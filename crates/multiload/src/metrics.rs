//! Per-load and aggregate metrics of a multi-load schedule.

use crate::policy::AdmissionOrder;

/// Which scheduler produced a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Loads served one at a time through the single-round closed forms.
    Fifo,
    /// Chunked loads interleaved round-robin on the demand machinery.
    RoundRobin,
    /// The generalized installment scheduler of [`crate::policy`], under
    /// the given admission order.
    Policy(AdmissionOrder),
}

impl SchedulerKind {
    /// Short name used in tables and CSV columns.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Fifo => "fifo",
            Self::RoundRobin => "round_robin",
            Self::Policy(order) => order.policy_name(),
        }
    }
}

/// Timing of one load within a multi-load schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadMetrics {
    /// Index of the load in the input batch.
    pub load: usize,
    /// Instant the first byte of this load starts moving (≥ its release).
    pub start: f64,
    /// Instant the last chunk of this load finishes computing.
    pub finish: f64,
    /// Release time copied from the spec (for self-contained reports).
    pub release: f64,
    /// Makespan of the load alone on the platform (stretch denominator).
    pub alone: f64,
    /// Data volume `N_j` copied from the spec, so aggregates (notably
    /// `total_data`) never need the original batch alongside the report.
    pub size: f64,
}

impl LoadMetrics {
    /// Flow time (a.k.a. response time): `finish − release`.
    pub fn flow(&self) -> f64 {
        self.finish - self.release
    }

    /// Stretch: flow time over the load's alone-on-the-platform makespan.
    /// ≥ 1 for any feasible schedule of the FIFO family.
    pub fn stretch(&self) -> f64 {
        self.flow() / self.alone
    }
}

/// Aggregates over a batch (computed once, stored for cheap reuse).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregateMetrics {
    /// Largest finish time over all loads.
    pub makespan: f64,
    /// Mean flow time `Σ (finish_j − release_j) / n`.
    pub mean_flow: f64,
    /// Largest per-load stretch.
    pub max_stretch: f64,
    /// Mean per-load stretch.
    pub mean_stretch: f64,
    /// Total data units distributed, `Σ N_j`.
    pub total_data: f64,
}

/// Outcome of scheduling a batch of loads.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiLoadReport {
    /// Scheduler that produced this report.
    pub scheduler: SchedulerKind,
    /// Per-load timings, indexed like the input batch.
    pub per_load: Vec<LoadMetrics>,
    /// Per-worker final finish times: the instant each worker completes
    /// its last positive share (0 for workers that never computed).
    pub worker_finish: Vec<f64>,
}

impl MultiLoadReport {
    /// Builds a report, computing per-load `alone` denominators from the
    /// batch.
    pub(crate) fn new(
        scheduler: SchedulerKind,
        per_load: Vec<LoadMetrics>,
        worker_finish: Vec<f64>,
    ) -> Self {
        Self {
            scheduler,
            per_load,
            worker_finish,
        }
    }

    /// Largest per-load finish time. Workers finishing the last
    /// installment share it; workers that sat out the tail finish earlier
    /// (see `worker_finish`).
    pub fn makespan(&self) -> f64 {
        self.per_load.iter().map(|l| l.finish).fold(0.0, f64::max)
    }

    /// Aggregate metrics over the batch. Complete on its own: the per-load
    /// sizes travel inside the report, so `total_data` is always `Σ N_j`
    /// (it used to require a separate `aggregate_with_loads` call and
    /// silently read 0 otherwise).
    pub fn aggregate(&self) -> AggregateMetrics {
        let n = self.per_load.len().max(1) as f64;
        let mut mean_flow = 0.0;
        let mut max_stretch: f64 = 0.0;
        let mut mean_stretch = 0.0;
        let mut total_data = 0.0;
        for l in &self.per_load {
            mean_flow += l.flow();
            let s = l.stretch();
            max_stretch = max_stretch.max(s);
            mean_stretch += s;
            total_data += l.size;
        }
        AggregateMetrics {
            makespan: self.makespan(),
            mean_flow: mean_flow / n,
            max_stretch,
            mean_stretch: mean_stretch / n,
            total_data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(load: usize, start: f64, finish: f64, release: f64, alone: f64) -> LoadMetrics {
        LoadMetrics {
            load,
            start,
            finish,
            release,
            alone,
            size: 5.0,
        }
    }

    #[test]
    fn flow_and_stretch() {
        let m = metrics(0, 1.0, 7.0, 1.0, 3.0);
        assert_eq!(m.flow(), 6.0);
        assert_eq!(m.stretch(), 2.0);
    }

    #[test]
    fn aggregate_over_two_loads() {
        let report = MultiLoadReport::new(
            SchedulerKind::Fifo,
            vec![
                metrics(0, 0.0, 4.0, 0.0, 4.0),
                metrics(1, 4.0, 10.0, 2.0, 4.0),
            ],
            vec![10.0, 10.0],
        );
        let agg = report.aggregate();
        assert_eq!(agg.makespan, 10.0);
        assert_eq!(agg.mean_flow, (4.0 + 8.0) / 2.0);
        assert_eq!(agg.max_stretch, 2.0);
        assert_eq!(agg.mean_stretch, 1.5);
    }

    #[test]
    fn aggregate_total_data_needs_no_side_channel() {
        // Regression: `aggregate()` used to hardcode `total_data: 0.0`
        // and rely on callers remembering `aggregate_with_loads`.
        let report = MultiLoadReport::new(
            SchedulerKind::Fifo,
            vec![
                metrics(0, 0.0, 4.0, 0.0, 4.0),
                metrics(1, 4.0, 10.0, 2.0, 4.0),
            ],
            vec![10.0],
        );
        assert_eq!(report.aggregate().total_data, 10.0);
    }

    #[test]
    fn scheduler_names() {
        assert_eq!(SchedulerKind::Fifo.name(), "fifo");
        assert_eq!(SchedulerKind::RoundRobin.name(), "round_robin");
        assert_eq!(
            SchedulerKind::Policy(AdmissionOrder::Srpt).name(),
            "policy_srpt"
        );
    }
}
