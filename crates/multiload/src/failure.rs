//! The **fault-injection layer**: worker drop-out and slow-down events
//! threaded through the policy and service engines.
//!
//! The paper's no-free-lunch result gives failures a price tag: with
//! `α > 1`, cutting a load into more pieces does *more* total work
//! (`k · (N/k)^α = N^α / k^{α−1}` per load), so an emergency re-solve
//! after a worker dies mid-installment is never free. This module makes
//! that cost measurable instead of hypothetical.
//!
//! # Failure model
//!
//! A [`FailureTrace`] is a time-sorted list of [`FailureEvent`]s:
//!
//! * [`FailureKind::Down`] — the worker leaves the platform permanently;
//! * [`FailureKind::Slow`] — the worker's speed is divided (and its
//!   communication cost multiplied) by `factor ≥ 1`, compounding with
//!   earlier slow-downs.
//!
//! The engines apply every event at or before the current instant before
//! each decision. An installment in flight when an event fires is **cut
//! at the event time**: the completed prefix is retained (the served
//! fraction `φ = (t − start) / (finish − start)` of the installment's
//! data, credited to the workers pro rata), the remaining data is
//! re-queued, and the next admission re-solves on the degraded platform —
//! graceful degradation, never a lost byte. The ledger arithmetic is
//! chosen so conservation is *bitwise* replayable: the retained piece is
//! `data · φ` and the engine's next remaining size is exactly
//! `remaining − data · φ`, the same subtraction [`replay_ledger`]
//! performs.
//!
//! Priority keys deliberately keep the **pristine-platform**
//! normalization: remaining-work estimates divide by the healthy
//! `Σ s_i` and stretch denominators are the healthy-platform alone
//! makespans, so a failure changes *what a solve yields*, never *how
//! candidates are ranked*. That is what keeps zero-failure runs
//! structurally identical — bit for bit — to [`crate::online_schedule`]
//! and [`crate::serve_trace`], and the fast engines in lockstep with
//! their linear-rescan references on failure paths too.
//!
//! # Entry points
//!
//! [`online_schedule_with_failures`] /
//! [`policy_schedule_with_failures`] mirror the batch schedulers of
//! [`crate::policy`] (each with a `_reference` twin); the streamed
//! counterpart is [`crate::service::serve_trace_with_failures`]. The
//! offline variant run on the *realized* trace is the clairvoyant
//! baseline of the competitive-ratio experiments: it knows every future
//! arrival, but failures strike it all the same.

use crate::error::MultiLoadError;
use crate::load::{validate_batch, LoadSpec};
use crate::policy::{
    alone_policy_makespans_backend, engine_fast, engine_reference, InstallmentExec, PolicyConfig,
    PolicyOutcome,
};
use dlt_core::batch::SolveBackend;
use dlt_core::nonlinear;
use dlt_platform::Platform;

/// What happens to a worker at a failure event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailureKind {
    /// The worker drops out permanently: it keeps the credit for data it
    /// processed before the event, but takes no further share.
    Down {
        /// Index of the failing worker.
        worker: usize,
    },
    /// The worker degrades: its speed is divided and its communication
    /// cost multiplied by `factor ≥ 1`, compounding with earlier
    /// slow-downs of the same worker.
    Slow {
        /// Index of the degrading worker.
        worker: usize,
        /// Degradation factor (`≥ 1`, `1` is a no-op).
        factor: f64,
    },
}

impl FailureKind {
    /// The worker the event applies to.
    pub fn worker(&self) -> usize {
        match *self {
            Self::Down { worker } | Self::Slow { worker, .. } => worker,
        }
    }
}

/// One failure event at an absolute time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureEvent {
    /// Instant the event takes effect.
    pub at: f64,
    /// What happens.
    pub kind: FailureKind,
}

impl FailureEvent {
    /// A permanent drop-out of `worker` at time `at`.
    pub fn down(at: f64, worker: usize) -> Self {
        Self {
            at,
            kind: FailureKind::Down { worker },
        }
    }

    /// A slow-down of `worker` by `factor` at time `at`.
    pub fn slow(at: f64, worker: usize, factor: f64) -> Self {
        Self {
            at,
            kind: FailureKind::Slow { worker, factor },
        }
    }
}

/// A validated, time-sorted adversarial failure scenario.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FailureTrace {
    events: Vec<FailureEvent>,
}

impl FailureTrace {
    /// The empty trace: no failures — every engine run with it is
    /// bit-identical to the failure-oblivious entry points.
    pub fn none() -> Self {
        Self { events: Vec::new() }
    }

    /// Validated constructor: event times must be finite, non-negative
    /// and non-decreasing; slow-down factors finite and ≥ 1. Worker
    /// indices are checked against the platform at schedule time
    /// ([`FailureTrace::validate_for`]).
    pub fn new(events: Vec<FailureEvent>) -> Result<Self, MultiLoadError> {
        let mut last = 0.0f64;
        for (i, e) in events.iter().enumerate() {
            let index = i as u64;
            if !(e.at.is_finite() && e.at >= 0.0) {
                return Err(MultiLoadError::InvalidFailureTrace {
                    index,
                    reason: "event time must be finite and >= 0",
                });
            }
            if e.at < last {
                return Err(MultiLoadError::InvalidFailureTrace {
                    index,
                    reason: "events must be sorted by non-decreasing time",
                });
            }
            last = e.at;
            if let FailureKind::Slow { factor, .. } = e.kind {
                if !(factor.is_finite() && factor >= 1.0) {
                    return Err(MultiLoadError::InvalidFailureTrace {
                        index,
                        reason: "slow-down factor must be finite and >= 1",
                    });
                }
            }
        }
        Ok(Self { events })
    }

    /// The events, in time order.
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    /// Whether the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Checks every worker index against a platform of `p` workers.
    pub fn validate_for(&self, p: usize) -> Result<(), MultiLoadError> {
        for (i, e) in self.events.iter().enumerate() {
            if e.kind.worker() >= p {
                return Err(MultiLoadError::InvalidFailureTrace {
                    index: i as u64,
                    reason: "worker index out of range for the platform",
                });
            }
        }
        Ok(())
    }
}

/// Mutable platform view the engines thread through a schedule: the
/// pristine platform until the first effective event, then a rebuilt
/// degraded sub-platform (alive workers only, speeds divided and costs
/// multiplied by the compounded slow-down factors) plus the map from
/// degraded worker indices back to the original ones.
pub(crate) struct PlatformState<'a> {
    base: &'a Platform,
    events: &'a [FailureEvent],
    next: usize,
    alive: Vec<bool>,
    factor: Vec<f64>,
    alive_count: usize,
    /// `None` while the platform is pristine (or fully dead — callers
    /// check [`PlatformState::current`] before solving).
    degraded: Option<(Platform, Vec<usize>)>,
}

impl<'a> PlatformState<'a> {
    pub(crate) fn new(base: &'a Platform, failures: &'a FailureTrace) -> Self {
        let p = base.len();
        Self {
            base,
            events: failures.events(),
            next: 0,
            alive: vec![true; p],
            factor: vec![1.0; p],
            alive_count: p,
            degraded: None,
        }
    }

    /// Time of the next unapplied event, if any.
    pub(crate) fn next_event_at(&self) -> Option<f64> {
        self.events.get(self.next).map(|e| e.at)
    }

    /// Applies every event at or before `now`.
    pub(crate) fn advance_to(&mut self, now: f64) -> Result<(), MultiLoadError> {
        let mut changed = false;
        while let Some(e) = self.events.get(self.next) {
            if e.at > now {
                break;
            }
            match e.kind {
                FailureKind::Down { worker } => {
                    if self.alive[worker] {
                        self.alive[worker] = false;
                        self.alive_count -= 1;
                        changed = true;
                    }
                }
                FailureKind::Slow { worker, factor } => {
                    if self.alive[worker] && factor != 1.0 {
                        self.factor[worker] *= factor;
                        changed = true;
                    }
                }
            }
            self.next += 1;
        }
        if changed {
            self.rebuild()?;
        }
        Ok(())
    }

    fn rebuild(&mut self) -> Result<(), MultiLoadError> {
        if self.alive_count == 0 {
            self.degraded = None;
            return Ok(());
        }
        let speeds = self.base.speeds();
        let costs = self.base.inv_bandwidths();
        let mut ds = Vec::with_capacity(self.alive_count);
        let mut dc = Vec::with_capacity(self.alive_count);
        let mut map = Vec::with_capacity(self.alive_count);
        for i in 0..self.base.len() {
            if self.alive[i] {
                ds.push(speeds[i] / self.factor[i]);
                dc.push(costs[i] * self.factor[i]);
                map.push(i);
            }
        }
        let platform = Platform::from_speeds_and_costs(&ds, &dc).map_err(|_| {
            // Compounded factors can underflow a speed to zero or blow a
            // cost up to infinity; surface that as a trace problem, not a
            // panic. `next` already moved past the offending event.
            MultiLoadError::InvalidFailureTrace {
                index: self.next.saturating_sub(1) as u64,
                reason: "compounded slow-down factors degrade a worker out of range",
            }
        })?;
        self.degraded = Some((platform, map));
        Ok(())
    }

    /// The platform to solve on right now, plus the degraded→original
    /// worker index map (`None` while pristine). Errors when every worker
    /// is down and data remains.
    pub(crate) fn current(&self, at: f64) -> Result<(&Platform, Option<&[usize]>), MultiLoadError> {
        if self.alive_count == 0 {
            return Err(MultiLoadError::AllWorkersFailed { at });
        }
        Ok(match &self.degraded {
            None => (self.base, None),
            Some((p, map)) => (p, Some(map)),
        })
    }

    /// Scatters a degraded-platform allocation back onto the full worker
    /// index space, scaled by `scale` (the served fraction of a cut
    /// installment). The pristine, uncut path returns the allocation
    /// slice untouched — bit-identity with the failure-oblivious engines
    /// is structural, not numerical.
    pub(crate) fn scatter<'x>(
        &self,
        x: &'x [f64],
        scale: Option<f64>,
        scratch: &'x mut Vec<f64>,
    ) -> &'x [f64] {
        let map = self.degraded.as_ref().map(|(_, m)| m.as_slice());
        if map.is_none() && scale.is_none() {
            return x;
        }
        scratch.clear();
        scratch.resize(self.base.len(), 0.0);
        match map {
            None => scratch.copy_from_slice(x),
            Some(map) => {
                for (i, &xi) in x.iter().enumerate() {
                    scratch[map[i]] = xi;
                }
            }
        }
        if let Some(phi) = scale {
            for v in scratch.iter_mut() {
                *v *= phi;
            }
        }
        scratch
    }
}

/// One served piece of a load, as the failure-aware engines record it:
/// either a full installment or the retained prefix of a cut one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServedPiece {
    /// Data units actually processed in the piece.
    pub data: f64,
    /// Whether a failure event cut the piece short.
    pub interrupted: bool,
}

/// Result of a failure-aware policy schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureOutcome {
    /// The schedule itself — per-load metrics keep the healthy-platform
    /// granularity-matched stretch denominators (the same values the
    /// weighted-stretch keys rank by), so a zero-failure run is
    /// field-for-field identical to the failure-oblivious entry points.
    pub outcome: PolicyOutcome,
    /// Per-load alone makespan at the **realized** piece granularity:
    /// `Σ` healthy-platform equal-finish solves of the pieces the load
    /// was *actually* served in (installments and retained prefixes).
    /// Against this denominator every realized stretch is ≥ 1 even under
    /// failures — cut pieces shrink the denominator along with the
    /// numerator. With no failures this equals
    /// [`crate::policy::alone_policy_makespans`] bit for bit.
    pub realized_alone: Vec<f64>,
}

/// Shared front door of the failure-aware policy entry points.
fn schedule_with_failures(
    platform: &Platform,
    loads: &[LoadSpec],
    config: &PolicyConfig,
    failures: &FailureTrace,
    online: bool,
    reference: bool,
    backend: SolveBackend,
) -> Result<FailureOutcome, MultiLoadError> {
    validate_batch(loads)?;
    if config.installments == 0 {
        return Err(MultiLoadError::ZeroInstallments);
    }
    failures.validate_for(platform.len())?;
    let alone = alone_policy_makespans_backend(platform, loads, config.installments, backend)?;
    let outcome = if reference {
        engine_reference(platform, loads, config, &alone, online, failures, backend)?
    } else {
        engine_fast(platform, loads, config, &alone, online, failures, backend)?
    };
    let realized_alone = realized_alone_makespans(platform, loads, &outcome.installment_log)?;
    Ok(FailureOutcome {
        outcome,
        realized_alone,
    })
}

/// [`crate::online_schedule`] under a failure trace: loads are revealed
/// at their release times, failures strike per `failures`, cut
/// installments retain their prefix and re-queue the remainder, and
/// every solve after an event runs on the degraded platform. With an
/// empty trace this is bit-identical to [`crate::online_schedule`].
pub fn online_schedule_with_failures(
    platform: &Platform,
    loads: &[LoadSpec],
    config: &PolicyConfig,
    failures: &FailureTrace,
) -> Result<FailureOutcome, MultiLoadError> {
    schedule_with_failures(
        platform,
        loads,
        config,
        failures,
        true,
        false,
        SolveBackend::Scalar,
    )
}

/// [`online_schedule_with_failures`] through an explicit solver backend:
/// every solve — stretch denominators and the degraded-platform re-solves
/// after each failure event — runs on `backend`. A worker dropping out
/// rebuilds the platform mid-trace; the batched backend detects the lane
/// change bitwise and falls back to the closed-form bound instead of
/// reusing stale (wrong-length) share seeds. [`SolveBackend::Scalar`] is
/// bit-identical to [`online_schedule_with_failures`].
pub fn online_schedule_with_failures_backend(
    platform: &Platform,
    loads: &[LoadSpec],
    config: &PolicyConfig,
    failures: &FailureTrace,
    backend: SolveBackend,
) -> Result<FailureOutcome, MultiLoadError> {
    schedule_with_failures(platform, loads, config, failures, true, false, backend)
}

/// Linear-rescan reference twin of [`online_schedule_with_failures`] —
/// bit-identical (property-tested), failures and all.
pub fn online_schedule_with_failures_reference(
    platform: &Platform,
    loads: &[LoadSpec],
    config: &PolicyConfig,
    failures: &FailureTrace,
) -> Result<FailureOutcome, MultiLoadError> {
    schedule_with_failures(
        platform,
        loads,
        config,
        failures,
        true,
        true,
        SolveBackend::Scalar,
    )
}

/// [`crate::policy_schedule`] under a failure trace: the **clairvoyant**
/// scheduler of the competitive-ratio experiments — it ranks unreleased
/// loads and waits for better arrivals, but failures strike it exactly
/// as they strike the online scheduler. With an empty trace this is
/// bit-identical to [`crate::policy_schedule`].
pub fn policy_schedule_with_failures(
    platform: &Platform,
    loads: &[LoadSpec],
    config: &PolicyConfig,
    failures: &FailureTrace,
) -> Result<FailureOutcome, MultiLoadError> {
    schedule_with_failures(
        platform,
        loads,
        config,
        failures,
        false,
        false,
        SolveBackend::Scalar,
    )
}

/// [`policy_schedule_with_failures`] through an explicit solver backend —
/// the clairvoyant twin of [`online_schedule_with_failures_backend`].
pub fn policy_schedule_with_failures_backend(
    platform: &Platform,
    loads: &[LoadSpec],
    config: &PolicyConfig,
    failures: &FailureTrace,
    backend: SolveBackend,
) -> Result<FailureOutcome, MultiLoadError> {
    schedule_with_failures(platform, loads, config, failures, false, false, backend)
}

/// Linear-rescan reference twin of [`policy_schedule_with_failures`].
pub fn policy_schedule_with_failures_reference(
    platform: &Platform,
    loads: &[LoadSpec],
    config: &PolicyConfig,
    failures: &FailureTrace,
) -> Result<FailureOutcome, MultiLoadError> {
    schedule_with_failures(
        platform,
        loads,
        config,
        failures,
        false,
        true,
        SolveBackend::Scalar,
    )
}

/// Alone makespans at the **realized** granularity: for each load, `Σ`
/// healthy-platform equal-finish solves of exactly the pieces the
/// schedule served it in (in service order), one warm-start handle
/// threaded load by load with the first solve cold — the same threading
/// as [`crate::policy::alone_policy_makespans`], so a failure-free log reproduces it
/// bit for bit.
pub fn realized_alone_makespans(
    platform: &Platform,
    loads: &[LoadSpec],
    log: &[InstallmentExec],
) -> Result<Vec<f64>, MultiLoadError> {
    let config = nonlinear::SolverConfig::default();
    let mut warm = nonlinear::WarmStart::new();
    let mut alone = vec![0.0f64; loads.len()];
    for (j, load) in loads.iter().enumerate() {
        for e in log.iter().filter(|e| e.load == j) {
            if e.data > 0.0 {
                alone[j] += nonlinear::equal_finish_parallel_with(
                    platform, e.data, load.model, &config, &mut warm,
                )?
                .makespan;
            }
        }
    }
    Ok(alone)
}

/// Replays the engines' documented remaining-data update rule over one
/// load's served pieces, **bitwise**: a full installment must carry
/// exactly `next_installment(remaining, left)` data (the last takes all
/// remaining), an interrupted piece subtracts exactly what it retained.
/// Returns the final remaining size — `0.0` (exactly) for a completed
/// load — or a description of the first divergence. This is the
/// conservation property: retained prefixes + re-queued remainders
/// recompose the original size under the engine's own arithmetic, with
/// no tolerance.
pub fn replay_ledger(
    size: f64,
    installments: usize,
    pieces: &[ServedPiece],
) -> Result<f64, String> {
    let mut remaining = size;
    let mut left = installments;
    for (i, piece) in pieces.iter().enumerate() {
        if remaining <= 0.0 {
            return Err(format!("piece {i} served after the load completed"));
        }
        if piece.interrupted {
            // The engine computed `requeued = remaining − retained` and
            // carried that on; replay performs the same subtraction on
            // the same bits.
            remaining -= piece.data;
            if remaining <= 0.0 {
                remaining = 0.0;
            }
        } else {
            let expected = crate::policy::next_installment(remaining, left);
            if piece.data.to_bits() != expected.to_bits() {
                return Err(format!(
                    "piece {i}: served {} but the update rule demands {expected}",
                    piece.data
                ));
            }
            remaining = if left == 1 {
                0.0
            } else {
                remaining - piece.data
            };
            left -= 1;
        }
    }
    Ok(remaining)
}

/// [`replay_ledger`] over every load of a policy installment log — the
/// batch-engine form of the conservation check.
pub fn replay_policy_ledger(
    loads: &[LoadSpec],
    installments: usize,
    log: &[InstallmentExec],
) -> Result<(), String> {
    for (j, load) in loads.iter().enumerate() {
        let pieces: Vec<ServedPiece> = log
            .iter()
            .filter(|e| e.load == j)
            .map(|e| ServedPiece {
                data: e.data,
                interrupted: e.interrupted,
            })
            .collect();
        let rest = replay_ledger(load.size, installments, &pieces)
            .map_err(|e| format!("load {j}: {e}"))?;
        if rest != 0.0 {
            return Err(format!("load {j}: {rest} data units never served"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{alone_policy_makespans, online_schedule, policy_schedule, AdmissionOrder};

    fn platform() -> Platform {
        Platform::from_speeds_and_costs(&[1.0, 3.0, 0.7], &[1.0, 0.2, 2.0]).unwrap()
    }

    fn loads() -> Vec<LoadSpec> {
        vec![
            LoadSpec::new(20.0, 2.0, 0.0).unwrap(),
            LoadSpec::new(10.0, 1.0, 3.0).unwrap(),
            LoadSpec::new(5.0, 1.5, 0.5).unwrap(),
        ]
    }

    fn cfg(order: AdmissionOrder, installments: usize) -> PolicyConfig {
        PolicyConfig {
            order,
            installments,
        }
    }

    #[test]
    fn trace_validation() {
        assert!(FailureTrace::new(vec![
            FailureEvent::slow(1.0, 0, 2.0),
            FailureEvent::down(2.0, 1),
        ])
        .is_ok());
        assert!(matches!(
            FailureTrace::new(vec![FailureEvent::down(f64::NAN, 0)]),
            Err(MultiLoadError::InvalidFailureTrace { index: 0, .. })
        ));
        assert!(matches!(
            FailureTrace::new(vec![FailureEvent::down(5.0, 0), FailureEvent::down(1.0, 1),]),
            Err(MultiLoadError::InvalidFailureTrace { index: 1, .. })
        ));
        assert!(matches!(
            FailureTrace::new(vec![FailureEvent::slow(0.0, 0, 0.5)]),
            Err(MultiLoadError::InvalidFailureTrace { index: 0, .. })
        ));
        let trace = FailureTrace::new(vec![FailureEvent::down(0.0, 7)]).unwrap();
        assert!(matches!(
            trace.validate_for(3),
            Err(MultiLoadError::InvalidFailureTrace { index: 0, .. })
        ));
        assert!(trace.validate_for(8).is_ok());
    }

    #[test]
    fn out_of_range_worker_is_a_typed_error() {
        let trace = FailureTrace::new(vec![FailureEvent::down(1.0, 99)]).unwrap();
        assert!(matches!(
            online_schedule_with_failures(
                &platform(),
                &loads(),
                &cfg(AdmissionOrder::Fifo, 1),
                &trace
            ),
            Err(MultiLoadError::InvalidFailureTrace { .. })
        ));
    }

    #[test]
    fn zero_failure_runs_reproduce_the_plain_engines_bitwise() {
        let platform = platform();
        let loads = loads();
        let none = FailureTrace::none();
        for order in AdmissionOrder::ALL {
            for k in [1usize, 3] {
                let c = cfg(order, k);
                let on = online_schedule_with_failures(&platform, &loads, &c, &none).unwrap();
                assert_eq!(on.outcome, online_schedule(&platform, &loads, &c).unwrap());
                assert_eq!(
                    on.realized_alone,
                    alone_policy_makespans(&platform, &loads, k).unwrap()
                );
                let off = policy_schedule_with_failures(&platform, &loads, &c, &none).unwrap();
                assert_eq!(off.outcome, policy_schedule(&platform, &loads, &c).unwrap());
            }
        }
    }

    #[test]
    fn engines_match_references_under_failures() {
        let platform = platform();
        let loads = loads();
        let trace = FailureTrace::new(vec![
            FailureEvent::slow(2.0, 1, 3.0),
            FailureEvent::down(6.0, 0),
            FailureEvent::slow(9.0, 2, 1.5),
        ])
        .unwrap();
        for order in AdmissionOrder::ALL {
            for k in [1usize, 2, 4] {
                let c = cfg(order, k);
                let on = online_schedule_with_failures(&platform, &loads, &c, &trace).unwrap();
                let on_ref =
                    online_schedule_with_failures_reference(&platform, &loads, &c, &trace).unwrap();
                assert_eq!(on, on_ref, "online {order:?} k={k}");
                let off = policy_schedule_with_failures(&platform, &loads, &c, &trace).unwrap();
                let off_ref =
                    policy_schedule_with_failures_reference(&platform, &loads, &c, &trace).unwrap();
                assert_eq!(off, off_ref, "offline {order:?} k={k}");
            }
        }
    }

    #[test]
    fn mid_installment_failure_retains_the_prefix_and_requeues_the_rest() {
        // One long load alone; worker 1 (the fast one) dies mid-flight.
        // The installment is cut at the event, the prefix stays credited,
        // and the remainder is re-solved on the two survivors.
        let platform = platform();
        let loads = [LoadSpec::immediate(40.0, 1.5).unwrap()];
        let c = cfg(AdmissionOrder::Fifo, 1);
        let healthy = online_schedule(&platform, &loads, &c).unwrap();
        let cut_at = healthy.report.makespan() * 0.5;
        let trace = FailureTrace::new(vec![FailureEvent::down(cut_at, 1)]).unwrap();
        let out = online_schedule_with_failures(&platform, &loads, &c, &trace).unwrap();
        assert_eq!(out.outcome.interruptions, 1);
        assert!(out.outcome.requeued_data > 0.0);
        // Two log entries: the cut prefix and the re-queued remainder.
        let log = &out.outcome.installment_log;
        assert_eq!(log.len(), 2);
        assert!(log[0].interrupted && !log[1].interrupted);
        assert_eq!(log[0].finish, cut_at);
        assert_eq!(log[1].start, cut_at);
        // The dead worker took no share of the remainder...
        let healthy_share_w1 = healthy.shares[0][1];
        assert!(out.outcome.shares[0][1] < healthy_share_w1);
        // ...and the degraded finish is strictly later than the healthy
        // one: no free lunch, the cut plus the slower platform both cost.
        assert!(out.outcome.report.makespan() > healthy.report.makespan());
        // Bitwise conservation, replayed from the public log.
        replay_policy_ledger(&loads, 1, log).unwrap();
    }

    #[test]
    fn all_workers_down_is_a_typed_error() {
        let platform = Platform::from_speeds(&[1.0, 2.0]).unwrap();
        let loads = [LoadSpec::immediate(100.0, 1.5).unwrap()];
        let trace = FailureTrace::new(vec![FailureEvent::down(0.5, 0), FailureEvent::down(0.5, 1)])
            .unwrap();
        assert!(matches!(
            online_schedule_with_failures(&platform, &loads, &cfg(AdmissionOrder::Fifo, 1), &trace),
            Err(MultiLoadError::AllWorkersFailed { .. })
        ));
    }

    #[test]
    fn slowdown_compounds_and_only_delays() {
        let platform = Platform::from_speeds(&[1.0, 2.0]).unwrap();
        let loads = [LoadSpec::immediate(30.0, 2.0).unwrap()];
        let c = cfg(AdmissionOrder::Fifo, 4);
        let healthy = online_schedule(&platform, &loads, &c).unwrap();
        let one = FailureTrace::new(vec![FailureEvent::slow(0.0, 1, 2.0)]).unwrap();
        let two = FailureTrace::new(vec![
            FailureEvent::slow(0.0, 1, 2.0),
            FailureEvent::slow(0.0, 1, 2.0),
        ])
        .unwrap();
        let m0 = healthy.report.makespan();
        let m1 = online_schedule_with_failures(&platform, &loads, &c, &one)
            .unwrap()
            .outcome
            .report
            .makespan();
        let m2 = online_schedule_with_failures(&platform, &loads, &c, &two)
            .unwrap()
            .outcome
            .report
            .makespan();
        assert!(m0 < m1 && m1 < m2);
    }

    #[test]
    fn events_during_an_offline_wait_apply_before_the_solve() {
        // The clairvoyant scheduler holds the platform for a future
        // arrival; a failure lands inside the waiting gap. The solve at
        // the release must already see the degraded platform.
        let platform = Platform::from_speeds(&[1.0, 1.0]).unwrap();
        let loads = [LoadSpec::new(10.0, 1.0, 10.0).unwrap()];
        let trace = FailureTrace::new(vec![FailureEvent::down(5.0, 0)]).unwrap();
        let c = cfg(AdmissionOrder::Fifo, 1);
        let out = policy_schedule_with_failures(&platform, &loads, &c, &trace).unwrap();
        assert_eq!(out.outcome.shares[0][0], 0.0);
        assert!(out.outcome.shares[0][1] > 0.0);
        assert_eq!(out.outcome.interruptions, 0);
    }

    #[test]
    fn realized_stretch_is_at_least_one_under_failures() {
        let platform = platform();
        let loads = loads();
        let trace = FailureTrace::new(vec![
            FailureEvent::slow(1.0, 1, 2.5),
            FailureEvent::down(4.0, 2),
        ])
        .unwrap();
        for order in AdmissionOrder::ALL {
            for k in [1usize, 3] {
                let out = online_schedule_with_failures(&platform, &loads, &cfg(order, k), &trace)
                    .unwrap();
                for (m, &alone) in out.outcome.report.per_load.iter().zip(&out.realized_alone) {
                    let stretch = (m.finish - m.release) / alone;
                    assert!(
                        stretch >= 1.0 - 1e-7,
                        "{order:?} k={k}: realized stretch {stretch}"
                    );
                }
            }
        }
    }

    #[test]
    fn ledger_replay_rejects_a_perturbed_log() {
        let pieces = [
            ServedPiece {
                data: 5.0,
                interrupted: false,
            },
            ServedPiece {
                data: 5.0,
                interrupted: false,
            },
        ];
        assert_eq!(replay_ledger(10.0, 2, &pieces).unwrap(), 0.0);
        let off = [
            ServedPiece {
                data: 5.0 + 1e-9,
                interrupted: false,
            },
            pieces[1],
        ];
        assert!(replay_ledger(10.0, 2, &off).is_err());
    }
}
