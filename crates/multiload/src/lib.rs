#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # dlt-multiload
//!
//! Scheduling **several** divisible loads on one heterogeneous star
//! platform — the multi-load setting of Gallet–Robert–Vivien and
//! Wu–Cao–Robertazzi, grafted onto this reproduction's single-load
//! machinery.
//!
//! A [`LoadSpec`] is one divisible load with its own size `N_j`,
//! nonlinearity exponent `α_j` (cost `w_i · x^{α_j}` for `x` data units on
//! worker `i`, as in [`dlt_core::nonlinear`]) and release time `r_j`.
//! Three scheduler families turn a batch of loads into a
//! [`MultiLoadReport`]:
//!
//! * [`fifo::fifo_schedule`] — the FIFO/installment scheduler: loads are
//!   served one at a time in release order, each through the existing
//!   optimal single-round closed forms
//!   ([`dlt_core::nonlinear::equal_finish_parallel`]). With a single load
//!   released at time 0 this reproduces the single-load solver **bit for
//!   bit** — the property tests pin that down.
//! * [`round_robin::round_robin_schedule`] — the interleaved scheduler:
//!   each load is chopped into equal chunks which are dispatched
//!   round-robin across loads on the binary-heap free-worker machinery of
//!   [`dlt_sim::simulate_demand`], respecting release times. A linear-scan
//!   executable specification
//!   ([`round_robin::round_robin_schedule_reference`]) is kept as the
//!   property-test oracle and bench baseline, mirroring the
//!   `simulate_demand` / `simulate_demand_reference` pair.
//! * [`policy::policy_schedule`] / [`policy::online_schedule`] — the
//!   **admission-policy subsystem**: a generalized installment scheduler
//!   whose service order is a pluggable [`AdmissionOrder`] (FIFO, SRPT by
//!   remaining work, weighted stretch), with preemption between
//!   installments and an online entry point that commits without future
//!   knowledge. Each engine keeps a linear-scan reference
//!   (bit-identical, property-tested), mirroring the round-robin pair.
//!
//! On top of the batch schedulers sits the **service engine**
//! ([`service::serve_trace`]): an event-driven online scheduler that
//! ingests a *streamed* arrival trace — millions of loads — at steady
//! memory, with an indexed pending set ([`event_queue::PendingSet`]:
//! `O(log n)` heap selection for static-key orders, lazy re-keying for
//! weighted stretch), windowed admission that merges same-cost-law winners
//! (grouped by [`dlt_core::costmodel::CostLaw::bits_eq`]) into one
//! warm-started solve, and adaptive installment counts. At its
//! defaults (window 1, fixed installments) it reproduces
//! [`policy::online_schedule`] bit for bit; its own linear-rescan twin
//! ([`service::serve_trace_reference`]) gates the batched/adaptive modes.
//!
//! The **fault-injection layer** ([`failure`]) threads a [`FailureTrace`]
//! of worker drop-outs and slow-downs through the policy and service
//! engines ([`online_schedule_with_failures`],
//! [`service::serve_trace_with_failures`]): an installment in flight at a
//! failure event is cut — the served prefix retained, the remainder
//! re-queued — and every later solve runs on the degraded platform, with
//! bitwise-replayable conservation ([`failure::replay_ledger`]) and the
//! same fast/reference lockstep as everywhere else.
//!
//! Per-load metrics (start, finish, flow time, stretch) and aggregates
//! (makespan, mean flow, mean/max stretch, total data) live in
//! [`metrics`]; the `multiload`, `multiload-policy`,
//! `multiload-service` and `multiload-competitive` binaries of
//! `dlt-experiments` sweep them over load count, platform heterogeneity,
//! nonlinearity, admission policy, arrival-stream pressure and failure
//! rate.
//!
//! ```
//! use dlt_multiload::{fifo_schedule, round_robin_schedule, LoadSpec, MultiLoadConfig};
//! use dlt_platform::Platform;
//!
//! let platform = Platform::from_speeds(&[1.0, 2.0, 4.0]).unwrap();
//! let loads = vec![
//!     LoadSpec::new(100.0, 2.0, 0.0).unwrap(),
//!     LoadSpec::new(50.0, 1.5, 1.0).unwrap(),
//! ];
//! let fifo = fifo_schedule(&platform, &loads).unwrap();
//! let rr = round_robin_schedule(&platform, &loads, &MultiLoadConfig::default()).unwrap();
//! assert!(fifo.report.makespan() > 0.0 && rr.report.makespan() > 0.0);
//! assert!(fifo.report.aggregate().mean_stretch >= 1.0 - 1e-9);
//! ```

pub mod error;
pub mod event_queue;
pub mod failure;
pub mod fifo;
pub mod load;
pub mod metrics;
pub mod policy;
pub mod round_robin;
pub mod service;

pub use dlt_core::batch::{BatchSolver, SolveBackend};
pub use error::MultiLoadError;
pub use event_queue::{PendingEntry, PendingSet};
pub use failure::{
    online_schedule_with_failures, online_schedule_with_failures_backend,
    online_schedule_with_failures_reference, policy_schedule_with_failures,
    policy_schedule_with_failures_backend, policy_schedule_with_failures_reference,
    realized_alone_makespans, replay_ledger, replay_policy_ledger, FailureEvent, FailureKind,
    FailureOutcome, FailureTrace, ServedPiece,
};
pub use fifo::{fifo_schedule, fifo_schedule_backend, FifoOutcome};
pub use load::{release_order, LoadSpec};
pub use metrics::{AggregateMetrics, LoadMetrics, MultiLoadReport, SchedulerKind};
pub use policy::{
    alone_policy_makespans, alone_policy_makespans_backend, online_schedule,
    online_schedule_backend, online_schedule_reference, online_schedule_reference_with_alone,
    online_schedule_with_alone, policy_schedule, policy_schedule_backend,
    policy_schedule_reference, policy_schedule_reference_with_alone, policy_schedule_with_alone,
    AdmissionOrder, InstallmentExec, PolicyConfig, PolicyOutcome,
};
pub use round_robin::{
    alone_makespans, alone_makespans_backend, round_robin_schedule, round_robin_schedule_reference,
    round_robin_schedule_reference_with_alone, round_robin_schedule_with_alone, ChunkExec,
    MultiLoadConfig, RoundRobinOutcome,
};
pub use service::{
    serve_trace, serve_trace_backend, serve_trace_reference, serve_trace_with_failures,
    serve_trace_with_failures_backend, serve_trace_with_failures_reference, CompletedLoad,
    CompletionSink, DiscardCompletions, InstallmentPolicy, ServiceConfig, ServiceReport,
};
