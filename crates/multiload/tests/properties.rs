//! Property-based tests for the multi-load schedulers: conservation,
//! release-time feasibility, heap-vs-reference bit-identity, the `N = 1`
//! degeneration to the single-load solvers, the admission-policy engines
//! against their linear-scan references, and the service engine's indexed
//! pending set against both its rescan reference and the
//! `online_schedule` oracle.

use dlt_core::nonlinear;
use dlt_multiload::{
    fifo_schedule, online_schedule, online_schedule_reference, policy_schedule,
    policy_schedule_reference, round_robin_schedule, round_robin_schedule_reference, serve_trace,
    serve_trace_reference, AdmissionOrder, CompletedLoad, InstallmentPolicy, LoadSpec,
    MultiLoadConfig, PolicyConfig, ServiceConfig,
};
use dlt_platform::Platform;
use dlt_sim::{simulate_demand, DemandConfig, DemandTask};
use proptest::prelude::*;

/// Random heterogeneous platform (1–8 workers) and load batch (1–6 loads
/// with mixed sizes, exponents and release times).
fn instance() -> impl Strategy<Value = (Platform, Vec<LoadSpec>)> {
    let speeds = proptest::collection::vec(0.2f64..10.0, 1..8);
    let load = (0.5f64..200.0, 1.0f64..3.0, 0.0f64..50.0)
        .prop_map(|(size, alpha, release)| LoadSpec::new(size, alpha, release).unwrap());
    let loads = proptest::collection::vec(load, 1..6);
    (speeds, loads).prop_map(|(speeds, loads)| (Platform::from_speeds(&speeds).unwrap(), loads))
}

/// As [`instance`], but every load released at 0 — the regime where the
/// online scheduler must equal the offline (clairvoyant) one exactly.
fn instance_all_released() -> impl Strategy<Value = (Platform, Vec<LoadSpec>)> {
    instance().prop_map(|(platform, loads)| {
        let loads = loads
            .into_iter()
            .map(|l| LoadSpec::immediate(l.size, l.alpha()).unwrap())
            .collect();
        (platform, loads)
    })
}

/// Chunk counts worth exercising: degenerate (1) through fine-grained.
fn chunk_count() -> impl Strategy<Value = usize> {
    (0usize..40).prop_map(|c| c.max(1))
}

/// Adversarial chunk counts for the conservation property: values whose
/// division `size / c` is maximally inexact (primes), plus large counts
/// that accumulate many rounding errors.
fn adversarial_chunk_count() -> impl Strategy<Value = usize> {
    const PRIMES: [usize; 6] = [3, 7, 13, 97, 499, 997];
    (0usize..1000).prop_map(|c| if c < PRIMES.len() { PRIMES[c] } else { c })
}

/// One of the three admission orders.
fn admission_order() -> impl Strategy<Value = AdmissionOrder> {
    (0usize..AdmissionOrder::ALL.len()).prop_map(|i| AdmissionOrder::ALL[i])
}

/// Installment counts: 1 (non-preemptive) through fine-grained.
fn installment_count() -> impl Strategy<Value = usize> {
    (0usize..8).prop_map(|c| c.max(1))
}

/// Fixed and adaptive installment policies of the service engine.
fn installment_policy() -> impl Strategy<Value = InstallmentPolicy> {
    (any::<bool>(), 1usize..4, 0usize..4).prop_map(|(fixed, k, extra)| {
        if fixed {
            InstallmentPolicy::Fixed(k)
        } else {
            InstallmentPolicy::Adaptive {
                min: k,
                max: k + extra,
            }
        }
    })
}

/// The service engine admits strictly in stream order, so its oracle
/// comparisons need release-sorted batches (the sort is stable: ties keep
/// their batch order, matching the engines' id tie-break).
fn sort_by_release(mut loads: Vec<LoadSpec>) -> Vec<LoadSpec> {
    loads.sort_by(|a, b| a.release.total_cmp(&b.release));
    loads
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fifo_conserves_every_load((platform, loads) in instance()) {
        let out = fifo_schedule(&platform, &loads).unwrap();
        for (j, load) in loads.iter().enumerate() {
            let shipped: f64 = out.shares[j].iter().sum();
            prop_assert!((shipped - load.size).abs() < 1e-9 * load.size.max(1.0),
                "load {j}: shipped {shipped} of {}", load.size);
        }
    }

    #[test]
    fn fifo_respects_release_times((platform, loads) in instance()) {
        let out = fifo_schedule(&platform, &loads).unwrap();
        for m in &out.report.per_load {
            prop_assert!(m.start >= loads[m.load].release);
            prop_assert!(m.finish > m.start);
        }
        // Consecutive installments never overlap.
        let mut by_start: Vec<_> = out.report.per_load.clone();
        by_start.sort_by(|a, b| a.start.total_cmp(&b.start));
        for w in by_start.windows(2) {
            prop_assert!(w[1].start >= w[0].finish - 1e-9);
        }
    }

    #[test]
    fn round_robin_conserves_total_volume(
        (platform, loads) in instance(),
        chunks in chunk_count(),
        include_comm in any::<bool>(),
    ) {
        let cfg = MultiLoadConfig { chunks_per_load: chunks, include_comm };
        let out = round_robin_schedule(&platform, &loads, &cfg).unwrap();
        let shipped: f64 = out.comm_volume.iter().sum();
        let total: f64 = loads.iter().map(|l| l.size).sum();
        prop_assert!((shipped - total).abs() < 1e-9 * total.max(1.0));
        // Every load contributes exactly chunks_per_load chunk executions.
        let mut counts = vec![0usize; loads.len()];
        for c in &out.chunk_log {
            counts[c.load] += 1;
        }
        prop_assert!(counts.iter().all(|&c| c == chunks));
    }

    #[test]
    fn round_robin_respects_release_times(
        (platform, loads) in instance(),
        chunks in chunk_count(),
    ) {
        let cfg = MultiLoadConfig { chunks_per_load: chunks, include_comm: false };
        let out = round_robin_schedule(&platform, &loads, &cfg).unwrap();
        for c in &out.chunk_log {
            prop_assert!(c.start >= loads[c.load].release,
                "chunk of load {} started {} before release {}",
                c.load, c.start, loads[c.load].release);
            prop_assert!(c.finish >= c.start);
        }
        for m in &out.report.per_load {
            prop_assert!(m.start >= m.release);
        }
    }

    #[test]
    fn heap_dispatcher_matches_linear_reference(
        (platform, loads) in instance(),
        chunks in chunk_count(),
        include_comm in any::<bool>(),
    ) {
        let cfg = MultiLoadConfig { chunks_per_load: chunks, include_comm };
        let heap = round_robin_schedule(&platform, &loads, &cfg).unwrap();
        let linear = round_robin_schedule_reference(&platform, &loads, &cfg).unwrap();
        prop_assert_eq!(heap, linear);
    }

    #[test]
    fn heap_matches_reference_on_tie_heavy_instances(
        p in 1usize..6,
        n_loads in 1usize..5,
        chunks in 1usize..20,
    ) {
        // Homogeneous platform + identical loads: every dispatch decision
        // is a free-time tie, the harshest determinism check.
        let platform = Platform::homogeneous(p, 1.0, 1.0).unwrap();
        let loads = vec![LoadSpec::immediate(12.0, 2.0).unwrap(); n_loads];
        let cfg = MultiLoadConfig { chunks_per_load: chunks, include_comm: false };
        let heap = round_robin_schedule(&platform, &loads, &cfg).unwrap();
        let linear = round_robin_schedule_reference(&platform, &loads, &cfg).unwrap();
        prop_assert_eq!(heap, linear);
    }

    #[test]
    fn single_immediate_load_fifo_is_the_single_load_solver(
        speeds in proptest::collection::vec(0.2f64..10.0, 1..8),
        size in 0.5f64..500.0,
        alpha in 1.0f64..3.0,
    ) {
        let platform = Platform::from_speeds(&speeds).unwrap();
        let load = LoadSpec::immediate(size, alpha).unwrap();
        let out = fifo_schedule(&platform, &[load]).unwrap();
        let direct = nonlinear::equal_finish_parallel(&platform, size, alpha).unwrap();
        // Bitwise equality: N = 1 must take exactly the single-load path.
        prop_assert_eq!(out.report.makespan(), direct.makespan);
        prop_assert_eq!(&out.shares[0], &direct.x);
        prop_assert_eq!(out.report.per_load[0].start, 0.0);
    }

    #[test]
    fn single_immediate_load_round_robin_is_simulate_demand(
        speeds in proptest::collection::vec(0.2f64..10.0, 1..8),
        size in 0.5f64..500.0,
        alpha in 1.0f64..3.0,
        chunks in 1usize..40,
        include_comm in any::<bool>(),
    ) {
        let platform = Platform::from_speeds(&speeds).unwrap();
        let load = LoadSpec::immediate(size, alpha).unwrap();
        let cfg = MultiLoadConfig { chunks_per_load: chunks, include_comm };
        let out = round_robin_schedule(&platform, &[load], &cfg).unwrap();

        // The chunk geometry of `chunk_queue`: body chunks of size/c, the
        // last chunk absorbing the rounding remainder.
        let body = size / chunks as f64;
        let last = (size - body * (chunks - 1) as f64).max(0.0);
        let tasks: Vec<DemandTask> = (0..chunks)
            .map(|k| {
                let d = if k == chunks - 1 { last } else { body };
                DemandTask::new(d, d.powf(alpha))
            })
            .collect();
        let demand = simulate_demand(
            &platform,
            &tasks,
            DemandConfig { include_comm, ..Default::default() },
        );
        // The heap machineries agree bit for bit.
        prop_assert_eq!(&out.report.worker_finish, &demand.finish_times);
        prop_assert_eq!(&out.comm_volume, &demand.comm_volume);
    }

    #[test]
    fn stretch_is_at_least_one_under_fifo((platform, loads) in instance()) {
        let out = fifo_schedule(&platform, &loads).unwrap();
        for m in &out.report.per_load {
            prop_assert!(m.stretch() >= 1.0 - 1e-12, "stretch {}", m.stretch());
        }
        // The aggregate is complete on its own: total_data comes from the
        // report (regression for the silently-zero `total_data`).
        let agg = out.report.aggregate();
        prop_assert!(agg.max_stretch >= agg.mean_stretch);
        prop_assert!((agg.total_data - loads.iter().map(|l| l.size).sum::<f64>()).abs() < 1e-12
            * agg.total_data.max(1.0));
    }

    #[test]
    fn round_robin_conserves_each_load_adversarially(
        (platform, loads) in instance(),
        chunks in adversarial_chunk_count(),
    ) {
        // Per-load conservation under the remainder-on-last-chunk queue:
        // each load's executed chunk data sums back to its size within
        // pure summation rounding (c additions), even for chunk counts
        // whose division is maximally inexact.
        let cfg = MultiLoadConfig { chunks_per_load: chunks, include_comm: false };
        let out = round_robin_schedule(&platform, &loads, &cfg).unwrap();
        let mut shipped = vec![0.0f64; loads.len()];
        for c in &out.chunk_log {
            shipped[c.load] += c.data;
        }
        for (j, load) in loads.iter().enumerate() {
            let tol = 4.0 * chunks as f64 * f64::EPSILON * load.size;
            prop_assert!((shipped[j] - load.size).abs() <= tol,
                "load {j}: shipped {} of {} (chunks={chunks})", shipped[j], load.size);
        }
    }

    #[test]
    fn policy_engines_match_linear_scan_references(
        (platform, loads) in instance(),
        order in admission_order(),
        installments in installment_count(),
    ) {
        // The cached-key engines must reproduce the rescan-everything
        // references bit for bit — offline and online, every policy,
        // preemptive and not.
        let cfg = PolicyConfig { order, installments };
        let off = policy_schedule(&platform, &loads, &cfg).unwrap();
        let off_ref = policy_schedule_reference(&platform, &loads, &cfg).unwrap();
        prop_assert_eq!(off, off_ref);
        let on = online_schedule(&platform, &loads, &cfg).unwrap();
        let on_ref = online_schedule_reference(&platform, &loads, &cfg).unwrap();
        prop_assert_eq!(on, on_ref);
    }

    #[test]
    fn policy_stretch_is_at_least_one(
        (platform, loads) in instance(),
        order in admission_order(),
        installments in installment_count(),
    ) {
        // Against the granularity-matched alone denominator, no policy —
        // FIFO, SRPT or weighted stretch, preemptive or not, offline or
        // online — can push a load's stretch below 1: contention only
        // ever delays installments.
        let cfg = PolicyConfig { order, installments };
        for schedule in [policy_schedule, online_schedule] {
            let out = schedule(&platform, &loads, &cfg).unwrap();
            for m in &out.report.per_load {
                prop_assert!(m.stretch() >= 1.0 - 1e-9,
                    "{order:?} k={installments}: stretch {}", m.stretch());
            }
        }
    }

    #[test]
    fn policy_conserves_and_respects_releases(
        (platform, loads) in instance(),
        order in admission_order(),
        installments in installment_count(),
    ) {
        let cfg = PolicyConfig { order, installments };
        let out = online_schedule(&platform, &loads, &cfg).unwrap();
        // Installments never start before their load's release, never
        // overlap (one platform), and each load is conserved exactly.
        let mut prev_finish = 0.0f64;
        for e in &out.installment_log {
            prop_assert!(e.start >= loads[e.load].release);
            prop_assert!(e.start >= prev_finish - 1e-9 * prev_finish.max(1.0));
            prev_finish = e.finish;
        }
        for (j, load) in loads.iter().enumerate() {
            let shipped: f64 = out.shares[j].iter().sum();
            prop_assert!((shipped - load.size).abs() < 1e-9 * load.size.max(1.0));
            let queued: f64 = out.installment_log
                .iter()
                .filter(|e| e.load == j)
                .map(|e| e.data)
                .sum();
            let tol = 4.0 * installments as f64 * f64::EPSILON * load.size;
            prop_assert!((queued - load.size).abs() <= tol);
        }
    }

    #[test]
    fn online_equals_offline_when_everything_is_released(
        (platform, loads) in instance_all_released(),
        order in admission_order(),
        installments in installment_count(),
    ) {
        // With every load released at 0 the online scheduler has full
        // knowledge from the first decision: it must take exactly the
        // offline (clairvoyant) path, bit for bit.
        let cfg = PolicyConfig { order, installments };
        let off = policy_schedule(&platform, &loads, &cfg).unwrap();
        let on = online_schedule(&platform, &loads, &cfg).unwrap();
        prop_assert_eq!(off, on);
    }

    #[test]
    fn single_immediate_load_policy_is_the_single_load_solver(
        speeds in proptest::collection::vec(0.2f64..10.0, 1..8),
        size in 0.5f64..500.0,
        alpha in 1.0f64..3.0,
        order in admission_order(),
    ) {
        // The policy anchor: one immediate load, one installment, any
        // admission order — the schedule IS the cold single-load solve.
        let platform = Platform::from_speeds(&speeds).unwrap();
        let load = LoadSpec::immediate(size, alpha).unwrap();
        let cfg = PolicyConfig { order, installments: 1 };
        let direct = nonlinear::equal_finish_parallel(&platform, size, alpha).unwrap();
        for schedule in [policy_schedule, online_schedule] {
            let out = schedule(&platform, &[load], &cfg).unwrap();
            prop_assert_eq!(out.report.makespan(), direct.makespan);
            prop_assert_eq!(&out.shares[0], &direct.x);
            prop_assert_eq!(out.report.per_load[0].stretch(), 1.0);
        }
    }

    #[test]
    fn service_defaults_match_online_schedule_bitwise(
        (platform, loads) in instance(),
        order in admission_order(),
        installments in installment_count(),
    ) {
        // At window 1 + fixed installments the service engine IS the
        // online scheduler: every admission, selection, solve, start,
        // finish, share and preemption must match bit for bit.
        let loads = sort_by_release(loads);
        let cfg = ServiceConfig {
            order,
            batch: 1,
            installments: InstallmentPolicy::Fixed(installments),
            track_stretch: true,
        };
        let mut done: Vec<CompletedLoad> = Vec::new();
        let report = serve_trace(&platform, loads.iter().copied(), &cfg, &mut done).unwrap();
        let oracle = online_schedule(&platform, &loads, &PolicyConfig { order, installments })
            .unwrap();
        prop_assert_eq!(report.makespan, oracle.report.makespan());
        prop_assert_eq!(&report.worker_finish, &oracle.report.worker_finish);
        prop_assert_eq!(report.preemptions, oracle.preemptions as u64);
        prop_assert_eq!(report.decisions, report.solves);
        prop_assert_eq!(done.len(), loads.len());
        for c in &done {
            let j = c.id as usize;
            prop_assert_eq!(c.start, oracle.report.per_load[j].start);
            prop_assert_eq!(c.finish, oracle.report.per_load[j].finish);
            prop_assert_eq!(c.alone, oracle.report.per_load[j].alone);
            prop_assert_eq!(&c.shares, &oracle.shares[j]);
        }
    }

    #[test]
    fn service_engine_matches_rescan_reference(
        (platform, loads) in instance(),
        order in admission_order(),
        batch in 1usize..5,
        policy in installment_policy(),
    ) {
        // The indexed pending set (heap / lazy re-keying) against the
        // rescan-everything selector, across the full configuration cube
        // the batch oracle cannot express: windows > 1 and adaptive
        // installment counts.
        let loads = sort_by_release(loads);
        let cfg = ServiceConfig { order, batch, installments: policy, track_stretch: true };
        let mut fast: Vec<CompletedLoad> = Vec::new();
        let mut slow: Vec<CompletedLoad> = Vec::new();
        let a = serve_trace(&platform, loads.iter().copied(), &cfg, &mut fast).unwrap();
        let b = serve_trace_reference(&platform, &loads, &cfg, &mut slow).unwrap();
        prop_assert_eq!(a, b);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn service_matches_reference_on_release_tie_heavy_instances(
        p in 1usize..6,
        n_loads in 1usize..13,
        order in admission_order(),
        batch in 1usize..4,
        installments in 1usize..4,
    ) {
        // Homogeneous platform + identical loads + quantized releases
        // (groups of 3 share an arrival instant): every selection is a
        // key tie decided purely by arrival id — the harshest
        // determinism check for the heap's tie-breaking.
        let platform = Platform::homogeneous(p, 1.0, 1.0).unwrap();
        let loads: Vec<LoadSpec> = (0..n_loads)
            .map(|j| LoadSpec::new(12.0, 2.0, (j / 3) as f64 * 5.0).unwrap())
            .collect();
        let cfg = ServiceConfig {
            order,
            batch,
            installments: InstallmentPolicy::Fixed(installments),
            track_stretch: true,
        };
        let mut fast: Vec<CompletedLoad> = Vec::new();
        let mut slow: Vec<CompletedLoad> = Vec::new();
        let a = serve_trace(&platform, loads.iter().copied(), &cfg, &mut fast).unwrap();
        let b = serve_trace_reference(&platform, &loads, &cfg, &mut slow).unwrap();
        prop_assert_eq!(a, b);
        prop_assert_eq!(fast, slow);
        // And at window 1 the batch oracle must agree too, ties and all.
        let one = ServiceConfig { batch: 1, ..cfg };
        let mut done: Vec<CompletedLoad> = Vec::new();
        let report = serve_trace(&platform, loads.iter().copied(), &one, &mut done).unwrap();
        let oracle = online_schedule(&platform, &loads, &PolicyConfig { order, installments })
            .unwrap();
        prop_assert_eq!(report.preemptions, oracle.preemptions as u64);
        for c in &done {
            prop_assert_eq!(c.finish, oracle.report.per_load[c.id as usize].finish);
        }
    }

    #[test]
    fn service_burst_admits_everything_then_drains(
        (platform, loads) in instance_all_released(),
        order in admission_order(),
        batch in 1usize..5,
        policy in installment_policy(),
    ) {
        // All arrivals at once: the pending set peaks at exactly the
        // trace length on the first admission sweep, and the engine still
        // matches the rescan reference decision for decision.
        let cfg = ServiceConfig { order, batch, installments: policy, track_stretch: true };
        let mut fast: Vec<CompletedLoad> = Vec::new();
        let mut slow: Vec<CompletedLoad> = Vec::new();
        let a = serve_trace(&platform, loads.iter().copied(), &cfg, &mut fast).unwrap();
        let b = serve_trace_reference(&platform, &loads, &cfg, &mut slow).unwrap();
        prop_assert_eq!(a.pending_high_water, loads.len());
        prop_assert_eq!(a, b);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn service_conserves_and_keeps_the_stretch_floor(
        (platform, loads) in instance(),
        order in admission_order(),
        batch in 1usize..5,
        policy in installment_policy(),
    ) {
        // Merged windows split one solve across members, adaptive counts
        // vary the granularity — but each load still receives exactly its
        // data, and against its own granularity-matched alone denominator
        // no load's stretch drops below 1.
        let loads = sort_by_release(loads);
        let cfg = ServiceConfig { order, batch, installments: policy, track_stretch: true };
        let mut done: Vec<CompletedLoad> = Vec::new();
        let report = serve_trace(&platform, loads.iter().copied(), &cfg, &mut done).unwrap();
        prop_assert_eq!(report.loads as usize, loads.len());
        for c in &done {
            let shipped: f64 = c.shares.iter().sum();
            prop_assert!((shipped - c.spec.size).abs() < 1e-9 * c.spec.size.max(1.0),
                "load {}: shipped {shipped} of {}", c.id, c.spec.size);
            prop_assert!(c.stretch() >= 1.0 - 1e-9,
                "load {}: stretch {}", c.id, c.stretch());
            prop_assert!(c.start >= c.spec.release);
        }
    }
}
