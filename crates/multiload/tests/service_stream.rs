//! Steady-memory soak of the service engine: a 10⁵-load streamed arrival
//! trace, asserting that the pending-set high-water mark stays bounded by
//! the arrival backlog — the live state is `O(pending)`, never
//! `O(total loads)`. Loads are linear (`α = 1`, the solver's cheap exact
//! path) so the soak stays fast in debug builds.

use dlt_multiload::{
    serve_trace, AdmissionOrder, CompletedLoad, CompletionSink, DiscardCompletions,
    InstallmentPolicy, LoadSpec, ServiceConfig,
};
use dlt_platform::Platform;

const N: usize = 100_000;

/// Deterministic paced trace: sizes cycle through 13 values, arrivals are
/// evenly spaced. With `spacing` comfortably above the mean service time
/// the queue stays shallow; the trace is generated lazily — the test
/// never materializes the 10⁵ specs.
fn trace(n: usize, spacing: f64) -> impl Iterator<Item = LoadSpec> {
    (0..n).map(move |j| {
        let size = 5.0 + (j % 13) as f64;
        LoadSpec::new(size, 1.0, j as f64 * spacing).unwrap()
    })
}

/// Sink that keeps only counters — a completion-order checksum without
/// per-load storage, so the test itself is steady-memory too.
#[derive(Default)]
struct Checksum {
    completed: u64,
    last_finish: f64,
    monotone: bool,
}

impl Checksum {
    fn new() -> Self {
        Self {
            completed: 0,
            last_finish: 0.0,
            monotone: true,
        }
    }
}

impl CompletionSink for Checksum {
    fn completed(&mut self, load: CompletedLoad) {
        self.completed += 1;
        if load.finish < self.last_finish {
            self.monotone = false;
        }
        self.last_finish = load.finish;
    }
}

#[test]
fn hundred_thousand_loads_at_steady_memory() {
    let platform = Platform::from_speeds(&[1.0, 2.0, 3.0, 4.0]).unwrap();
    // The mean-size (11) load takes ≈ 4.05 alone on this platform
    // (communication included), so spacing 8.0 holds utilization near
    // 50% — loaded enough that loads genuinely queue, light enough that
    // the backlog stays bounded.
    let cfg = ServiceConfig {
        order: AdmissionOrder::Srpt,
        batch: 1,
        installments: InstallmentPolicy::Fixed(1),
        track_stretch: false,
    };
    let mut sink = Checksum::new();
    let report = serve_trace(&platform, trace(N, 8.0), &cfg, &mut sink).unwrap();
    assert_eq!(report.loads, N as u64);
    assert_eq!(sink.completed, N as u64);
    assert!(sink.monotone, "completions must stream in finish order");
    assert_eq!(report.decisions, N as u64);
    assert!(
        report.pending_high_water <= 64,
        "backlog peaked at {} — live state must track the arrival backlog, \
         not the trace length",
        report.pending_high_water
    );
    assert!(report.makespan >= (N - 1) as f64 * 8.0);
    let total: f64 = (0..N).map(|j| 5.0 + (j % 13) as f64).sum();
    assert!((report.total_data - total).abs() < 1e-6 * total);
}

#[test]
fn soak_under_batching_and_adaptive_installments() {
    let platform = Platform::from_speeds(&[1.0, 2.0, 3.0, 4.0]).unwrap();
    // A quarter of the trace at ~90% utilization: deeper transient
    // queues exercise the adaptive pick without slowing the suite.
    let cfg = ServiceConfig {
        order: AdmissionOrder::Srpt,
        batch: 8,
        installments: InstallmentPolicy::Adaptive { min: 1, max: 8 },
        track_stretch: false,
    };
    let report = serve_trace(&platform, trace(N / 4, 4.5), &cfg, &mut DiscardCompletions).unwrap();
    assert_eq!(report.loads, (N / 4) as u64);
    // Same-α windows merge: batching must amortize solves below the
    // decision count.
    assert!(report.solves < report.decisions);
    assert!(report.pending_high_water <= 256);
}

#[test]
fn weighted_stretch_soak_with_stretch_tracking() {
    let platform = Platform::from_speeds(&[1.0, 2.0, 3.0, 4.0]).unwrap();
    let cfg = ServiceConfig {
        order: AdmissionOrder::WeightedStretch,
        batch: 1,
        installments: InstallmentPolicy::Fixed(1),
        track_stretch: true,
    };
    let report = serve_trace(&platform, trace(N / 10, 8.0), &cfg, &mut DiscardCompletions).unwrap();
    assert_eq!(report.loads, (N / 10) as u64);
    assert_eq!(report.alone_solves, (N / 10) as u64);
    assert!(report.mean_stretch() >= 1.0 - 1e-9);
    assert!(report.max_stretch >= report.mean_stretch());
    assert!(report.pending_high_water <= 64);
}
