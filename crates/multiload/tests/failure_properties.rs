//! Property-based tests of the fault-injection layer: fast-engine /
//! linear-rescan bit-identity **under failures**, zero-failure runs
//! reproducing the failure-oblivious engines bitwise, bitwise ledger
//! conservation (retained prefixes + re-queued remainders recompose each
//! load), and the realized-stretch floor.
//!
//! This file runs at `ProptestConfig::default()`, so the CI seed-matrix
//! job can deepen it with `PROPTEST_CASES` and explore independent input
//! sets with `PROPTEST_SEED` — no rebuild, no code change.

use dlt_multiload::{
    alone_policy_makespans, online_schedule, online_schedule_with_failures,
    online_schedule_with_failures_reference, policy_schedule, policy_schedule_with_failures,
    policy_schedule_with_failures_reference, replay_ledger, replay_policy_ledger, serve_trace,
    serve_trace_with_failures, serve_trace_with_failures_reference, AdmissionOrder, CompletedLoad,
    FailureEvent, FailureTrace, InstallmentPolicy, LoadSpec, PolicyConfig, ServiceConfig,
};
use dlt_platform::Platform;
use proptest::prelude::*;

/// Random heterogeneous platform (1–8 workers) and load batch (1–6 loads
/// with mixed sizes, exponents and release times) — the same instance
/// space as the failure-free property suite.
fn instance() -> impl Strategy<Value = (Platform, Vec<LoadSpec>)> {
    let speeds = proptest::collection::vec(0.2f64..10.0, 1..8);
    let load = (0.5f64..200.0, 1.0f64..3.0, 0.0f64..50.0)
        .prop_map(|(size, alpha, release)| LoadSpec::new(size, alpha, release).unwrap());
    let loads = proptest::collection::vec(load, 1..6);
    (speeds, loads).prop_map(|(speeds, loads)| (Platform::from_speeds(&speeds).unwrap(), loads))
}

/// Raw failure-event descriptors, platform-agnostic: `(time, worker
/// draw, lethal, factor)`. [`assemble_trace`] maps them onto a concrete
/// platform.
fn raw_events() -> impl Strategy<Value = Vec<(f64, usize, bool, f64)>> {
    proptest::collection::vec(
        (0.0f64..120.0, 0usize..64, any::<bool>(), 1.0f64..3.0),
        0..6,
    )
}

/// Builds a valid [`FailureTrace`] for a `p`-worker platform: times
/// sorted, workers reduced mod `p`, and drop-outs capped at `p − 1`
/// distinct workers (the survivor keeps [`online_schedule_with_failures`]
/// total — `AllWorkersFailed` paths get their own unit tests).
fn assemble_trace(p: usize, raw: &[(f64, usize, bool, f64)]) -> FailureTrace {
    let mut raw: Vec<_> = raw.to_vec();
    raw.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut down = vec![false; p];
    let mut downs = 0usize;
    let mut events = Vec::new();
    for &(at, w, lethal, factor) in &raw {
        let worker = w % p;
        if lethal && !down[worker] && downs + 1 < p {
            down[worker] = true;
            downs += 1;
            events.push(FailureEvent::down(at, worker));
        } else {
            events.push(FailureEvent::slow(at, worker, factor));
        }
    }
    FailureTrace::new(events).expect("assembled trace is sorted and valid")
}

/// One of the three admission orders.
fn admission_order() -> impl Strategy<Value = AdmissionOrder> {
    (0usize..AdmissionOrder::ALL.len()).prop_map(|i| AdmissionOrder::ALL[i])
}

/// Installment counts: 1 (non-preemptive) through fine-grained.
fn installment_count() -> impl Strategy<Value = usize> {
    (0usize..8).prop_map(|c| c.max(1))
}

/// Release-sorted batches for the service engine (stable sort: release
/// ties keep batch order, matching the engines' id tie-break).
fn sort_by_release(mut loads: Vec<LoadSpec>) -> Vec<LoadSpec> {
    loads.sort_by(|a, b| a.release.total_cmp(&b.release));
    loads
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    #[test]
    fn failure_engines_match_linear_scan_references(
        (platform, loads) in instance(),
        raw in raw_events(),
        order in admission_order(),
        installments in installment_count(),
    ) {
        // The fast engines must stay in bitwise lockstep with the
        // rescan-everything references on the failure paths too: same
        // cuts, same retained prefixes, same degraded-platform solves.
        let failures = assemble_trace(platform.len(), &raw);
        let cfg = PolicyConfig { order, installments };
        let on = online_schedule_with_failures(&platform, &loads, &cfg, &failures).unwrap();
        let on_ref =
            online_schedule_with_failures_reference(&platform, &loads, &cfg, &failures).unwrap();
        prop_assert_eq!(&on, &on_ref);
        let off = policy_schedule_with_failures(&platform, &loads, &cfg, &failures).unwrap();
        let off_ref =
            policy_schedule_with_failures_reference(&platform, &loads, &cfg, &failures).unwrap();
        prop_assert_eq!(&off, &off_ref);
    }

    #[test]
    fn zero_failure_runs_reproduce_the_plain_engines_bitwise(
        (platform, loads) in instance(),
        order in admission_order(),
        installments in installment_count(),
    ) {
        // The empty trace must cost nothing: not a ulp of divergence
        // from the failure-oblivious entry points, and the realized
        // stretch denominators collapse to the planned ones.
        let none = FailureTrace::none();
        let cfg = PolicyConfig { order, installments };
        let alone = alone_policy_makespans(&platform, &loads, installments).unwrap();

        let on = online_schedule_with_failures(&platform, &loads, &cfg, &none).unwrap();
        let plain_on = online_schedule(&platform, &loads, &cfg).unwrap();
        prop_assert_eq!(&on.outcome, &plain_on);
        prop_assert_eq!(&on.realized_alone, &alone);
        prop_assert_eq!(on.outcome.interruptions, 0);
        prop_assert_eq!(on.outcome.requeued_data, 0.0);

        let off = policy_schedule_with_failures(&platform, &loads, &cfg, &none).unwrap();
        let plain_off = policy_schedule(&platform, &loads, &cfg).unwrap();
        prop_assert_eq!(&off.outcome, &plain_off);
        prop_assert_eq!(&off.realized_alone, &alone);
    }

    #[test]
    fn ledger_replays_bitwise_and_conserves_data(
        (platform, loads) in instance(),
        raw in raw_events(),
        order in admission_order(),
        installments in installment_count(),
    ) {
        // Bitwise data conservation: every load's served pieces —
        // retained prefixes plus re-queued remainders — recompose its
        // size exactly under the engine's own update rule, and the
        // summed worker shares agree within summation rounding.
        let failures = assemble_trace(platform.len(), &raw);
        let cfg = PolicyConfig { order, installments };
        for schedule in [online_schedule_with_failures, policy_schedule_with_failures] {
            let out = schedule(&platform, &loads, &cfg, &failures).unwrap();
            replay_policy_ledger(&loads, installments, &out.outcome.installment_log)
                .unwrap_or_else(|e| panic!("ledger replay failed: {e}"));
            for (j, load) in loads.iter().enumerate() {
                let shipped: f64 = out.outcome.shares[j].iter().sum();
                prop_assert!((shipped - load.size).abs() < 1e-9 * load.size.max(1.0),
                    "load {j}: shipped {shipped} of {}", load.size);
            }
            // Cuts and re-queued volume come in pairs.
            let cut = out.outcome.installment_log.iter().filter(|e| e.interrupted).count();
            prop_assert_eq!(cut, out.outcome.interruptions);
            if out.outcome.interruptions == 0 {
                prop_assert_eq!(out.outcome.requeued_data, 0.0);
            }
        }
    }

    #[test]
    fn realized_stretch_is_at_least_one_under_failures(
        (platform, loads) in instance(),
        raw in raw_events(),
        order in admission_order(),
        installments in installment_count(),
    ) {
        // Against the realized-granularity alone denominator (healthy
        // platform, the pieces actually served), failures can only delay:
        // no load's realized stretch dips below 1.
        let failures = assemble_trace(platform.len(), &raw);
        let cfg = PolicyConfig { order, installments };
        let out = online_schedule_with_failures(&platform, &loads, &cfg, &failures).unwrap();
        for (m, &alone) in out.outcome.report.per_load.iter().zip(&out.realized_alone) {
            let stretch = (m.finish - m.release) / alone;
            prop_assert!(stretch >= 1.0 - 1e-7,
                "load {}: realized stretch {stretch}", m.load);
        }
    }

    #[test]
    fn service_failure_engine_matches_rescan_reference(
        (platform, loads) in instance(),
        raw in raw_events(),
        order in admission_order(),
        batch in 1usize..4,
        installments in 1usize..4,
    ) {
        // The streamed engine's failure path against its linear-rescan
        // twin, across windows the batch engines cannot express — and
        // every completed load's piece ledger replays to exactly 0.
        let loads = sort_by_release(loads);
        let failures = assemble_trace(platform.len(), &raw);
        let cfg = ServiceConfig {
            order,
            batch,
            installments: InstallmentPolicy::Fixed(installments),
            track_stretch: true,
        };
        let mut fast: Vec<CompletedLoad> = Vec::new();
        let mut slow: Vec<CompletedLoad> = Vec::new();
        let a = serve_trace_with_failures(
            &platform, loads.iter().copied(), &cfg, &failures, &mut fast).unwrap();
        let b = serve_trace_with_failures_reference(
            &platform, &loads, &cfg, &failures, &mut slow).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&fast, &slow);
        for c in &fast {
            let rest = replay_ledger(c.spec.size, c.installments, &c.pieces)
                .unwrap_or_else(|e| panic!("load {}: {e}", c.id));
            prop_assert_eq!(rest, 0.0);
        }
    }

    #[test]
    fn service_zero_failure_run_is_serve_trace_bitwise(
        (platform, loads) in instance(),
        order in admission_order(),
        batch in 1usize..4,
        installments in 1usize..4,
    ) {
        let loads = sort_by_release(loads);
        let cfg = ServiceConfig {
            order,
            batch,
            installments: InstallmentPolicy::Fixed(installments),
            track_stretch: true,
        };
        let mut with: Vec<CompletedLoad> = Vec::new();
        let mut without: Vec<CompletedLoad> = Vec::new();
        let a = serve_trace_with_failures(
            &platform, loads.iter().copied(), &cfg, &FailureTrace::none(), &mut with).unwrap();
        let b = serve_trace(&platform, loads.iter().copied(), &cfg, &mut without).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&with, &without);
        prop_assert_eq!(a.interruptions, 0);
        prop_assert_eq!(a.requeued_data, 0.0);
    }

    #[test]
    fn service_oracle_point_matches_the_batch_engine_under_failures(
        (platform, loads) in instance(),
        raw in raw_events(),
        order in admission_order(),
        installments in 1usize..4,
    ) {
        // Window 1 + fixed installments: the streamed failure engine IS
        // the batch online failure engine, cuts included — same starts,
        // finishes, shares and interruption counts, bit for bit.
        let loads = sort_by_release(loads);
        let failures = assemble_trace(platform.len(), &raw);
        let cfg = ServiceConfig {
            order,
            batch: 1,
            installments: InstallmentPolicy::Fixed(installments),
            track_stretch: true,
        };
        let mut done: Vec<CompletedLoad> = Vec::new();
        let report = serve_trace_with_failures(
            &platform, loads.iter().copied(), &cfg, &failures, &mut done).unwrap();
        let oracle = online_schedule_with_failures(
            &platform, &loads, &PolicyConfig { order, installments }, &failures).unwrap();
        prop_assert_eq!(report.makespan, oracle.outcome.report.makespan());
        prop_assert_eq!(&report.worker_finish, &oracle.outcome.report.worker_finish);
        prop_assert_eq!(report.interruptions, oracle.outcome.interruptions as u64);
        prop_assert_eq!(report.requeued_data, oracle.outcome.requeued_data);
        for c in &done {
            let j = c.id as usize;
            prop_assert_eq!(c.start, oracle.outcome.report.per_load[j].start);
            prop_assert_eq!(c.finish, oracle.outcome.report.per_load[j].finish);
            prop_assert_eq!(&c.shares, &oracle.outcome.shares[j]);
        }
    }
}
