//! Edge-case traces through the service engine, each checked
//! **bitwise** against the linear-rescan reference: the empty trace, a
//! single load, all-simultaneous releases (tie ordering by
//! `(key, arrival id)`), and burst-then-silence arrival patterns. These
//! are the shapes where an indexed pending set or an event loop most
//! plausibly diverges from its executable specification.

use dlt_multiload::{
    serve_trace, serve_trace_reference, AdmissionOrder, CompletedLoad, InstallmentPolicy, LoadSpec,
    ServiceConfig, ServiceReport,
};
use dlt_platform::Platform;

fn platform() -> Platform {
    Platform::from_speeds_and_costs(&[1.0, 2.5, 4.0], &[0.02, 0.01, 0.005]).unwrap()
}

/// Every engine configuration the edge traces sweep: each admission
/// order at the oracle point and in batched/multi-installment modes.
fn configs() -> Vec<ServiceConfig> {
    let mut cfgs = Vec::new();
    for order in AdmissionOrder::ALL {
        for batch in [1usize, 3] {
            for installments in [
                InstallmentPolicy::Fixed(1),
                InstallmentPolicy::Fixed(3),
                InstallmentPolicy::Adaptive { min: 1, max: 4 },
            ] {
                cfgs.push(ServiceConfig {
                    order,
                    batch,
                    installments,
                    track_stretch: true,
                });
            }
        }
    }
    cfgs
}

/// Runs one trace through the fast engine and the linear-rescan
/// reference and demands bitwise equality of reports and completions.
fn assert_lockstep(loads: &[LoadSpec], what: &str) -> Vec<(ServiceReport, Vec<CompletedLoad>)> {
    let platform = platform();
    let mut runs = Vec::new();
    for cfg in configs() {
        let mut fast_out: Vec<CompletedLoad> = Vec::new();
        let fast = serve_trace(&platform, loads.iter().cloned(), &cfg, &mut fast_out)
            .unwrap_or_else(|e| panic!("{what}: fast engine failed under {cfg:?}: {e}"));
        let mut ref_out: Vec<CompletedLoad> = Vec::new();
        let reference = serve_trace_reference(&platform, loads, &cfg, &mut ref_out)
            .unwrap_or_else(|e| panic!("{what}: reference failed under {cfg:?}: {e}"));
        assert_eq!(fast, reference, "{what}: report diverged under {cfg:?}");
        assert_eq!(
            fast_out, ref_out,
            "{what}: completions diverged under {cfg:?}"
        );
        runs.push((fast, fast_out));
    }
    runs
}

#[test]
fn empty_trace_is_an_empty_report() {
    for (report, completions) in assert_lockstep(&[], "empty trace") {
        assert_eq!(report.loads, 0);
        assert_eq!(report.decisions, 0);
        assert_eq!(report.makespan, 0.0);
        assert_eq!(report.total_data, 0.0);
        assert_eq!(report.pending_high_water, 0);
        assert!(completions.is_empty());
    }
}

#[test]
fn single_load_serves_alone() {
    let loads = vec![LoadSpec::new(120.0, 1.5, 3.0).unwrap()];
    for (report, completions) in assert_lockstep(&loads, "single load") {
        assert_eq!(report.loads, 1);
        assert_eq!(completions.len(), 1);
        let cl = &completions[0];
        assert_eq!(cl.id, 0);
        assert!(cl.start >= 3.0, "service cannot precede the release");
        assert!(cl.finish > cl.start);
        // Alone on the platform: flow == alone, stretch exactly 1 at
        // matched granularity.
        assert_eq!(cl.flow(), cl.alone);
        assert_eq!(report.pending_high_water, 1);
    }
}

#[test]
fn simultaneous_identical_releases_tie_break_by_arrival_id() {
    // Eight clones: same size, same alpha, same release — every
    // admission order's key is identical across them, so selection falls
    // entirely to the (key, arrival id) tie rule. Any divergence between
    // the heap and the rescan (or any instability in either) shows up as
    // a different service order and different finish times.
    let loads: Vec<LoadSpec> = (0..8)
        .map(|_| LoadSpec::new(60.0, 2.0, 0.0).unwrap())
        .collect();
    for (report, completions) in assert_lockstep(&loads, "simultaneous ties") {
        assert_eq!(report.loads, 8);
        assert_eq!(completions.len(), 8);
    }
    // At the oracle point (window 1, one installment, no preemption
    // possible between identical loads) the service order IS the id
    // order; completions stream in that order too.
    let platform = platform();
    for order in AdmissionOrder::ALL {
        let cfg = ServiceConfig {
            order,
            batch: 1,
            installments: InstallmentPolicy::Fixed(1),
            track_stretch: true,
        };
        let mut out: Vec<CompletedLoad> = Vec::new();
        serve_trace(&platform, loads.iter().cloned(), &cfg, &mut out).unwrap();
        let ids: Vec<u64> = out.iter().map(|c| c.id).collect();
        assert_eq!(
            ids,
            (0..8).collect::<Vec<u64>>(),
            "{order:?} must break exact key ties by arrival id"
        );
        // Identical loads served back to back: finishes strictly
        // increase, each later clone waits longer.
        for w in out.windows(2) {
            assert!(w[0].finish < w[1].finish);
            assert!(w[0].flow() < w[1].flow());
        }
    }
}

#[test]
fn burst_then_silence_then_burst() {
    // Two tight bursts separated by a silence much longer than either
    // burst's service time: the engine must drain the first burst, idle
    // across the gap (no phantom decisions), and restart cleanly.
    let mut loads = Vec::new();
    for j in 0..6 {
        loads.push(LoadSpec::new(40.0 + j as f64, 1.5, j as f64 * 0.1).unwrap());
    }
    for j in 0..6 {
        loads.push(LoadSpec::new(35.0 + j as f64, 1.5, 5_000.0 + j as f64 * 0.1).unwrap());
    }
    for (report, completions) in assert_lockstep(&loads, "burst-silence-burst") {
        assert_eq!(report.loads, 12);
        let first_burst_end = completions
            .iter()
            .filter(|c| c.id < 6)
            .map(|c| c.finish)
            .fold(0.0f64, f64::max);
        assert!(
            first_burst_end < 5_000.0,
            "the first burst must drain during the silence (ended {first_burst_end})"
        );
        for c in completions.iter().filter(|c| c.id >= 6) {
            assert!(c.start >= 5_000.0, "second-burst load served early");
        }
        assert!(report.makespan > 5_000.0);
        // The backlog never mixes the bursts.
        assert!(report.pending_high_water <= 6);
    }
}

#[test]
fn all_simultaneous_releases_with_distinct_sizes_stay_in_lockstep() {
    // Same instant, different sizes: SRPT and weighted stretch now rank
    // by key, FIFO still falls to the id tie. Exercises the opposite
    // branch of the tie rule on the same event-queue state.
    let loads: Vec<LoadSpec> = (0..8)
        .map(|j| LoadSpec::new(30.0 + 17.0 * j as f64, 1.5, 0.0).unwrap())
        .collect();
    for (report, _) in assert_lockstep(&loads, "simultaneous distinct") {
        assert_eq!(report.loads, 8);
        assert!(report.mean_stretch() >= 1.0 - 1e-9);
    }
    // SRPT at the oracle point must serve the smallest load first and
    // the largest last.
    let cfg = ServiceConfig {
        order: AdmissionOrder::Srpt,
        batch: 1,
        installments: InstallmentPolicy::Fixed(1),
        track_stretch: true,
    };
    let mut out: Vec<CompletedLoad> = Vec::new();
    serve_trace(&platform(), loads.iter().cloned(), &cfg, &mut out).unwrap();
    assert_eq!(out.first().unwrap().id, 0);
    assert_eq!(out.last().unwrap().id, 7);
}
