//! Engine-level regression tests for the batched solver backend: every
//! multiload engine run with [`SolveBackend::Batched`] must agree with its
//! scalar-oracle run to ≤ 1e-9 relative on makespans, shares and flows,
//! and must keep the integer decision structure (orders, counts) exactly.
//!
//! The instances are deterministic and deliberately tie-free — distinct
//! sizes, releases and exponents — so a 1e-12-level perturbation of a
//! solve cannot flip a priority ranking and turn a numeric wobble into a
//! structural diff. (Tie sensitivity is the schedulers' own business and
//! is covered by their reference-twin property tests.)

use dlt_multiload::{
    alone_makespans, alone_makespans_backend, alone_policy_makespans,
    alone_policy_makespans_backend, fifo_schedule, fifo_schedule_backend, online_schedule,
    online_schedule_backend, online_schedule_with_alone, online_schedule_with_failures,
    online_schedule_with_failures_backend, policy_schedule, policy_schedule_backend,
    policy_schedule_with_alone, policy_schedule_with_failures,
    policy_schedule_with_failures_backend, round_robin_schedule, round_robin_schedule_with_alone,
    serve_trace, serve_trace_backend, serve_trace_with_failures, serve_trace_with_failures_backend,
    AdmissionOrder, FailureEvent, FailureTrace, InstallmentPolicy, LoadSpec, MultiLoadConfig,
    PolicyConfig, ServiceConfig, SolveBackend,
};
use dlt_platform::Platform;

/// Same oracle bound as the core differential suite: batched within 1e-9
/// relative of scalar.
const ORACLE_REL: f64 = 1e-9;

fn close(scalar: f64, batched: f64, ctx: &str) {
    let scale = scalar.abs().max(batched.abs()).max(1e-300);
    assert!(
        (scalar - batched).abs() <= ORACLE_REL * scale,
        "{ctx}: scalar {scalar:e} vs batched {batched:e} (rel {:e})",
        (scalar - batched).abs() / scale
    );
}

fn close_shares(scalar: &[Vec<f64>], batched: &[Vec<f64>], total: f64, ctx: &str) {
    assert_eq!(scalar.len(), batched.len(), "{ctx}: share row count");
    for (j, (xs, xb)) in scalar.iter().zip(batched).enumerate() {
        assert_eq!(xs.len(), xb.len(), "{ctx}: load {j} share width");
        for (i, (&a, &b)) in xs.iter().zip(xb).enumerate() {
            // Tiny shares sit on steep parts of the inverse; bound them
            // against the load scale like the core suite does.
            let scale = a.abs().max(b.abs()).max(total * 1e-3);
            assert!(
                (a - b).abs() <= ORACLE_REL * scale,
                "{ctx}: load {j} worker {i}: scalar {a:e} vs batched {b:e}"
            );
        }
    }
}

fn platform() -> Platform {
    Platform::from_speeds_and_costs(&[1.0, 3.0, 0.7, 2.2], &[1.0, 0.2, 2.0, 0.6]).unwrap()
}

fn loads() -> Vec<LoadSpec> {
    vec![
        LoadSpec::new(40.0, 2.0, 0.0).unwrap(),
        LoadSpec::new(17.0, 1.5, 1.0).unwrap(),
        LoadSpec::new(63.0, 3.0, 2.5).unwrap(),
        LoadSpec::new(9.0, 1.2, 4.0).unwrap(),
        LoadSpec::new(28.0, 2.7, 6.0).unwrap(),
    ]
}

#[test]
fn fifo_batched_matches_scalar_oracle() {
    let platform = platform();
    let loads = loads();
    let s = fifo_schedule(&platform, &loads).unwrap();
    let b = fifo_schedule_backend(&platform, &loads, SolveBackend::Batched).unwrap();
    assert_eq!(s.order, b.order, "service order is backend-independent");
    close(s.report.makespan(), b.report.makespan(), "fifo makespan");
    let total: f64 = loads.iter().map(|l| l.size).sum();
    close_shares(&s.shares, &b.shares, total, "fifo shares");
    for (ms, mb) in s.report.per_load.iter().zip(&b.report.per_load) {
        close(ms.start, mb.start, "fifo start");
        close(ms.finish, mb.finish, "fifo finish");
        close(ms.alone, mb.alone, "fifo alone");
    }
}

#[test]
fn alone_makespans_batched_match_scalar_oracle() {
    let platform = platform();
    let loads = loads();
    let s = alone_makespans(&platform, &loads).unwrap();
    let b = alone_makespans_backend(&platform, &loads, SolveBackend::Batched).unwrap();
    for (j, (&a, &bb)) in s.iter().zip(&b).enumerate() {
        close(a, bb, &format!("alone makespan, load {j}"));
    }
}

#[test]
fn policy_engines_batched_match_scalar_oracle() {
    let platform = platform();
    let loads = loads();
    for order in AdmissionOrder::ALL {
        for k in [1usize, 3] {
            let cfg = PolicyConfig {
                order,
                installments: k,
            };
            let ctx = format!("{order:?} k={k}");
            let so = online_schedule(&platform, &loads, &cfg).unwrap();
            let bo =
                online_schedule_backend(&platform, &loads, &cfg, SolveBackend::Batched).unwrap();
            assert_eq!(so.preemptions, bo.preemptions, "{ctx}: online preemptions");
            assert_eq!(
                so.installment_log.len(),
                bo.installment_log.len(),
                "{ctx}: online installment count"
            );
            close(
                so.report.makespan(),
                bo.report.makespan(),
                &format!("{ctx}: online makespan"),
            );
            let total: f64 = loads.iter().map(|l| l.size).sum();
            close_shares(&so.shares, &bo.shares, total, &format!("{ctx}: online"));

            let sp = policy_schedule(&platform, &loads, &cfg).unwrap();
            let bp =
                policy_schedule_backend(&platform, &loads, &cfg, SolveBackend::Batched).unwrap();
            assert_eq!(sp.preemptions, bp.preemptions, "{ctx}: offline preemptions");
            close(
                sp.report.makespan(),
                bp.report.makespan(),
                &format!("{ctx}: offline makespan"),
            );
            close_shares(&sp.shares, &bp.shares, total, &format!("{ctx}: offline"));
        }
    }
}

#[test]
fn service_batched_matches_scalar_oracle() {
    let platform = platform();
    let loads = loads();
    for (batch, installments) in [
        (1usize, InstallmentPolicy::Fixed(1)),
        (2, InstallmentPolicy::Fixed(2)),
        (2, InstallmentPolicy::Adaptive { min: 1, max: 4 }),
    ] {
        let cfg = ServiceConfig {
            order: AdmissionOrder::Srpt,
            batch,
            installments,
            track_stretch: true,
        };
        let ctx = format!("batch={batch} {installments:?}");
        let mut sdone = Vec::new();
        let s = serve_trace(&platform, loads.clone(), &cfg, &mut sdone).unwrap();
        let mut bdone = Vec::new();
        let b = serve_trace_backend(
            &platform,
            loads.clone(),
            &cfg,
            SolveBackend::Batched,
            &mut bdone,
        )
        .unwrap();
        // Integer decision structure must be exactly preserved.
        assert_eq!(s.loads, b.loads, "{ctx}: loads");
        assert_eq!(s.decisions, b.decisions, "{ctx}: decisions");
        assert_eq!(s.solves, b.solves, "{ctx}: solves");
        assert_eq!(s.alone_solves, b.alone_solves, "{ctx}: alone solves");
        assert_eq!(s.preemptions, b.preemptions, "{ctx}: preemptions");
        close(s.makespan, b.makespan, &format!("{ctx}: makespan"));
        close(s.flow_sum, b.flow_sum, &format!("{ctx}: flow sum"));
        close(s.stretch_sum, b.stretch_sum, &format!("{ctx}: stretch sum"));
        assert_eq!(sdone.len(), bdone.len());
        for (cs, cb) in sdone.iter().zip(&bdone) {
            assert_eq!(cs.id, cb.id, "{ctx}: completion order");
            close(cs.finish, cb.finish, &format!("{ctx}: completion finish"));
            close(cs.alone, cb.alone, &format!("{ctx}: completion alone"));
        }
    }
}

#[test]
fn single_worker_platform_agrees() {
    // p = 1 degenerates the lane loop to width one — the batched path must
    // still bracket, converge and conserve exactly.
    let platform = Platform::from_speeds_and_costs(&[1.7], &[0.3]).unwrap();
    let loads = vec![
        LoadSpec::new(12.0, 2.0, 0.0).unwrap(),
        LoadSpec::new(5.0, 1.5, 2.0).unwrap(),
    ];
    let s = fifo_schedule(&platform, &loads).unwrap();
    let b = fifo_schedule_backend(&platform, &loads, SolveBackend::Batched).unwrap();
    close(
        s.report.makespan(),
        b.report.makespan(),
        "p=1 fifo makespan",
    );
    // Single worker: the share IS the load, bit for bit, on both backends.
    for (j, l) in loads.iter().enumerate() {
        assert_eq!(b.shares[j], vec![l.size]);
    }
}

#[test]
fn near_dead_link_agrees() {
    // One worker behind a c = 1e12 link gets an ~0 share: the batched
    // kernel must neither starve the solve nor blow the oracle bound on
    // the healthy lanes.
    let platform = Platform::from_speeds_and_costs(&[1.0, 2.0, 1.5], &[0.5, 1e12, 0.8]).unwrap();
    let loads = vec![
        LoadSpec::new(30.0, 2.0, 0.0).unwrap(),
        LoadSpec::new(11.0, 1.8, 1.0).unwrap(),
    ];
    let s = fifo_schedule(&platform, &loads).unwrap();
    let b = fifo_schedule_backend(&platform, &loads, SolveBackend::Batched).unwrap();
    close(
        s.report.makespan(),
        b.report.makespan(),
        "near-dead-link fifo makespan",
    );
    let total: f64 = loads.iter().map(|l| l.size).sum();
    close_shares(&s.shares, &b.shares, total, "near-dead-link fifo shares");
    // The dead lane's share is negligible next to the healthy ones.
    for row in &b.shares {
        assert!(row[1] <= 1e-6 * (row[0] + row[2]));
    }
}

#[test]
fn alpha_extremes_agree() {
    // α = 1 (linear — closed-form inverse territory) and α = 24 (the
    // steepest law the differential suite samples) through a batched
    // policy engine.
    let platform = platform();
    let loads = vec![
        LoadSpec::new(25.0, 1.0, 0.0).unwrap(),
        LoadSpec::new(13.0, 24.0, 0.5).unwrap(),
        LoadSpec::new(7.0, 1.0, 1.5).unwrap(),
    ];
    let cfg = PolicyConfig {
        order: AdmissionOrder::Fifo,
        installments: 2,
    };
    let s = online_schedule(&platform, &loads, &cfg).unwrap();
    let b = online_schedule_backend(&platform, &loads, &cfg, SolveBackend::Batched).unwrap();
    close(
        s.report.makespan(),
        b.report.makespan(),
        "alpha extremes makespan",
    );
    let total: f64 = loads.iter().map(|l| l.size).sum();
    close_shares(&s.shares, &b.shares, total, "alpha extremes shares");
}

#[test]
fn zero_load_rejected_identically() {
    // n = 0 is invalid input, and must fail the same way on both
    // backends — at validation, before any kernel runs.
    let platform = platform();
    let bad = LoadSpec {
        size: 0.0,
        model: dlt_core::costmodel::CostLaw::alpha_power(2.0),
        release: 0.0,
    };
    let s = fifo_schedule(&platform, &[bad]);
    let b = fifo_schedule_backend(&platform, &[bad], SolveBackend::Batched);
    assert!(s.is_err() && b.is_err());
    assert_eq!(
        format!("{:?}", s.unwrap_err()),
        format!("{:?}", b.unwrap_err())
    );
}

/// Satellite regression: a worker failing out mid-trace **shrinks the
/// platform** between two solves on the *same* batched handle. The
/// batched backend keeps per-worker share seeds from the previous solve;
/// after the shrink those seeds have the wrong length and must be
/// discarded (falling back to the closed-form bound), not misapplied to
/// the wrong lanes. Before the `refresh_platform` seed-clearing fix this
/// either panicked on a length mismatch or silently warm-started lane
/// `i` with dead-worker `i`'s share.
#[test]
fn failure_trace_shrinking_platform_agrees_with_scalar() {
    let platform = platform();
    let loads = loads();
    let trace = FailureTrace::new(vec![
        FailureEvent::slow(2.0, 1, 3.0),
        FailureEvent::down(6.0, 0),
        FailureEvent::down(11.0, 2),
    ])
    .unwrap();
    for order in [AdmissionOrder::Fifo, AdmissionOrder::Srpt] {
        for k in [1usize, 2] {
            let cfg = PolicyConfig {
                order,
                installments: k,
            };
            let ctx = format!("{order:?} k={k}");
            let s = online_schedule_with_failures(&platform, &loads, &cfg, &trace).unwrap();
            let b = online_schedule_with_failures_backend(
                &platform,
                &loads,
                &cfg,
                &trace,
                SolveBackend::Batched,
            )
            .unwrap();
            assert_eq!(
                s.outcome.interruptions, b.outcome.interruptions,
                "{ctx}: interruptions"
            );
            close(
                s.outcome.report.makespan(),
                b.outcome.report.makespan(),
                &format!("{ctx}: failure makespan"),
            );
            close(
                s.outcome.requeued_data,
                b.outcome.requeued_data,
                &format!("{ctx}: requeued data"),
            );
            for (j, (&a, &bb)) in s.realized_alone.iter().zip(&b.realized_alone).enumerate() {
                close(a, bb, &format!("{ctx}: realized alone, load {j}"));
            }
        }
    }
}

#[test]
fn failure_trace_streaming_service_agrees_with_scalar() {
    // Same shrinking-platform regression through the streaming engine:
    // its two batched handles (installment + alone) see the degraded
    // platforms interleaved with pristine-platform alone solves, so seed
    // lengths flip back and forth across one handle's lifetime.
    let platform = platform();
    let loads = loads();
    let trace = FailureTrace::new(vec![
        FailureEvent::slow(1.5, 3, 2.0),
        FailureEvent::down(5.0, 1),
    ])
    .unwrap();
    let cfg = ServiceConfig {
        order: AdmissionOrder::Srpt,
        batch: 2,
        installments: InstallmentPolicy::Fixed(2),
        track_stretch: true,
    };
    let mut sdone = Vec::new();
    let s = serve_trace_with_failures(&platform, loads.clone(), &cfg, &trace, &mut sdone).unwrap();
    let mut bdone = Vec::new();
    let b = serve_trace_with_failures_backend(
        &platform,
        loads.clone(),
        &cfg,
        &trace,
        SolveBackend::Batched,
        &mut bdone,
    )
    .unwrap();
    assert_eq!(s.loads, b.loads, "service failure loads");
    assert_eq!(s.decisions, b.decisions, "service failure decisions");
    assert_eq!(
        s.interruptions, b.interruptions,
        "service failure interruptions"
    );
    close(s.makespan, b.makespan, "service failure makespan");
    close(s.requeued_data, b.requeued_data, "service failure requeued");
    assert_eq!(sdone.len(), bdone.len());
    for (cs, cb) in sdone.iter().zip(&bdone) {
        assert_eq!(cs.id, cb.id, "service failure completion order");
        close(cs.finish, cb.finish, "service failure completion finish");
    }
}

/// The `_with_alone` wrappers are pure plumbing: handing them exactly the
/// denominators their parent computes must reproduce the parent's outcome
/// bit for bit (`PolicyOutcome`/`RoundRobinOutcome` derive `PartialEq`).
#[test]
fn with_alone_wrappers_are_bit_identical_to_their_parents() {
    let platform = platform();
    let loads = loads();
    let cfg = PolicyConfig {
        order: AdmissionOrder::Srpt,
        installments: 3,
    };
    let alone = alone_policy_makespans(&platform, &loads, cfg.installments).unwrap();

    let parent = policy_schedule(&platform, &loads, &cfg).unwrap();
    let wrapped = policy_schedule_with_alone(&platform, &loads, &cfg, &alone).unwrap();
    assert_eq!(parent, wrapped, "policy_schedule_with_alone");

    let parent = online_schedule(&platform, &loads, &cfg).unwrap();
    let wrapped = online_schedule_with_alone(&platform, &loads, &cfg, &alone).unwrap();
    assert_eq!(parent, wrapped, "online_schedule_with_alone");

    let rr_cfg = MultiLoadConfig::default();
    let rr_alone = alone_makespans(&platform, &loads).unwrap();
    let parent = round_robin_schedule(&platform, &loads, &rr_cfg).unwrap();
    let wrapped = round_robin_schedule_with_alone(&platform, &loads, &rr_cfg, &rr_alone).unwrap();
    assert_eq!(parent, wrapped, "round_robin_schedule_with_alone");
}

/// `SolveBackend::Scalar` through a `_backend` entry point forwards to
/// the plain path verbatim; `Batched` stays within the oracle bound.
#[test]
fn alone_policy_makespans_backend_matches_scalar_oracle() {
    let platform = platform();
    let loads = loads();
    for k in [1usize, 4] {
        let plain = alone_policy_makespans(&platform, &loads, k).unwrap();
        let scalar =
            alone_policy_makespans_backend(&platform, &loads, k, SolveBackend::Scalar).unwrap();
        assert_eq!(plain, scalar, "scalar backend forwards verbatim, k={k}");
        let batched =
            alone_policy_makespans_backend(&platform, &loads, k, SolveBackend::Batched).unwrap();
        for (j, (&a, &b)) in plain.iter().zip(&batched).enumerate() {
            close(a, b, &format!("alone policy makespan k={k}, load {j}"));
        }
    }
}

#[test]
fn policy_failures_backend_matches_scalar_oracle() {
    let platform = platform();
    let loads = loads();
    let cfg = PolicyConfig {
        order: AdmissionOrder::Srpt,
        installments: 3,
    };
    let trace = FailureTrace::new(vec![
        FailureEvent::slow(2.0, 1, 3.0),
        FailureEvent::down(6.0, 0),
    ])
    .unwrap();
    let plain = policy_schedule_with_failures(&platform, &loads, &cfg, &trace).unwrap();
    let scalar = policy_schedule_with_failures_backend(
        &platform,
        &loads,
        &cfg,
        &trace,
        SolveBackend::Scalar,
    )
    .unwrap();
    assert_eq!(plain, scalar, "scalar backend forwards verbatim");
    let batched = policy_schedule_with_failures_backend(
        &platform,
        &loads,
        &cfg,
        &trace,
        SolveBackend::Batched,
    )
    .unwrap();
    assert_eq!(
        plain.outcome.preemptions, batched.outcome.preemptions,
        "failure decision structure is backend-independent"
    );
    close(
        plain.outcome.report.makespan(),
        batched.outcome.report.makespan(),
        "policy failure makespan",
    );
    for (j, (&a, &b)) in plain
        .realized_alone
        .iter()
        .zip(&batched.realized_alone)
        .enumerate()
    {
        close(a, b, &format!("realized alone, load {j}"));
    }
}
