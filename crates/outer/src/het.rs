//! The `Commhet` strategy: one rectangle per worker, areas proportional to
//! speed, chosen by the PERI-SUM partitioner (Section 4.1.2).

use dlt_partition::{peri_sum_partition, scale_to_grid, IntRect};
use dlt_platform::Platform;

/// Outcome of the heterogeneous-rectangles strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct HetRectsOutcome {
    /// Rectangle of worker `i` on the `N×N` grid (possibly degenerate for
    /// very slow workers on small domains).
    pub rects: Vec<IntRect>,
    /// Total data shipped: `Σ (width + height)`.
    pub comm_volume: f64,
    /// Load imbalance of the static assignment (compute time is
    /// `area·w_i`), over workers that received any cells.
    pub imbalance: f64,
}

/// Runs `Commhet`: PERI-SUM partition of the unit square with areas
/// `x_i = s_i/Σs`, scaled exactly to the `N×N` grid.
pub fn het_rects(platform: &Platform, n: usize) -> HetRectsOutcome {
    assert!(n > 0);
    let shares = platform.normalized_speeds();
    let partition =
        peri_sum_partition(&shares).expect("normalized speeds are valid partition areas");
    let rects = scale_to_grid(&partition, n);
    let comm_volume = rects
        .iter()
        .filter(|r| !r.is_degenerate())
        .map(|r| r.half_perimeter() as f64)
        .sum();
    // Static imbalance: finish time of worker i is area_i · w_i. Workers
    // with degenerate rectangles finish at 0 and are excluded only when
    // the integer grid genuinely cannot host them (area < 1 cell).
    let finish: Vec<f64> = rects
        .iter()
        .zip(platform.iter())
        .map(|(r, w)| r.area() as f64 * w.w())
        .collect();
    HetRectsOutcome {
        imbalance: dlt_sim::imbalance(&finish),
        comm_volume,
        rects,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlt_partition::grid::covers_exactly;

    #[test]
    fn homogeneous_platform_gets_near_square_grid() {
        let platform = Platform::homogeneous(4, 1.0, 1.0).unwrap();
        let out = het_rects(&platform, 100);
        assert!(covers_exactly(&out.rects, 100));
        // 2×2 grid of 50×50 squares: volume = 4·100 = 400.
        assert!((out.comm_volume - 400.0).abs() < 1e-9);
        assert!(out.imbalance < 1e-12);
    }

    #[test]
    fn rects_tile_the_domain() {
        let platform = Platform::from_speeds(&[1.0, 3.0, 2.0, 7.0, 5.0]).unwrap();
        let out = het_rects(&platform, 257);
        assert!(covers_exactly(&out.rects, 257));
    }

    #[test]
    fn areas_proportional_to_speeds() {
        let platform = Platform::from_speeds(&[1.0, 3.0]).unwrap();
        let n = 1000;
        let out = het_rects(&platform, n);
        let a0 = out.rects[0].area() as f64;
        let a1 = out.rects[1].area() as f64;
        assert!((a1 / a0 - 3.0).abs() < 0.05, "ratio {}", a1 / a0);
        // Rounding keeps the static imbalance tiny on a large grid.
        assert!(out.imbalance < 0.02, "imbalance {}", out.imbalance);
    }

    #[test]
    fn het_beats_hom_on_heterogeneous_platforms() {
        let platform = Platform::two_class(10, 1.0, 16.0).unwrap();
        let n = 512;
        let het = het_rects(&platform, n);
        let hom = crate::hom::hom_blocks(&platform, n);
        assert!(
            het.comm_volume < hom.comm_volume,
            "het {} vs hom {}",
            het.comm_volume,
            hom.comm_volume
        );
    }

    #[test]
    fn near_lower_bound_for_many_workers() {
        use dlt_platform::{PlatformSpec, SpeedDistribution};
        let platform = PlatformSpec::new(100, SpeedDistribution::paper_uniform())
            .generate(7)
            .unwrap();
        let n = 10_000;
        let out = het_rects(&platform, n);
        let lb = crate::strategies::comm_lower_bound(&platform, n);
        let ratio = out.comm_volume / lb;
        // The paper reports ≤ ~2% above the bound.
        assert!((1.0..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn single_worker() {
        let platform = Platform::from_speeds(&[1.0]).unwrap();
        let out = het_rects(&platform, 64);
        assert_eq!(out.rects[0], IntRect::new(0, 64, 0, 64));
        assert!((out.comm_volume - 128.0).abs() < 1e-12);
    }
}
