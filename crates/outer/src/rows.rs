//! The 1D ("row/column") distribution the paper's Section 4 intro lists
//! among MapReduce-implemented layouts: each worker receives a horizontal
//! band of the outer-product domain — its share of the rows of `a` plus
//! **all** of `b`.
//!
//! Load balance is perfect by construction (band heights proportional to
//! speed), but the communication volume is `N + p·N`: every worker
//! replicates the entire `b` vector. Against the lower bound `2NΣ√x_i ≤
//! 2N√p`, the 1D layout is a `Θ(√p)` factor off even on homogeneous
//! platforms — the reason the paper (and ScaLAPACK) prefer 2D layouts.

use dlt_partition::IntRect;
use dlt_platform::Platform;

/// Outcome of the 1D row-band distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct RowBandsOutcome {
    /// Band of worker `i` (full domain width).
    pub rects: Vec<IntRect>,
    /// Total data shipped: `Σ_i (h_i + N) = N + p·N`.
    pub comm_volume: f64,
    /// Static load imbalance (compute time `area·w_i`).
    pub imbalance: f64,
}

/// Splits the `N×N` domain into horizontal bands with heights
/// proportional to worker speeds (largest-remainder rounding keeps the
/// cover exact).
pub fn row_bands(platform: &Platform, n: usize) -> RowBandsOutcome {
    assert!(n > 0);
    let shares = platform.normalized_speeds();
    let p = platform.len();
    // Cumulative rounding: band i spans [round(cum_i·N), round(cum_{i+1}·N)).
    let mut bounds = Vec::with_capacity(p + 1);
    let mut cum = 0.0;
    bounds.push(0usize);
    for &x in &shares {
        cum += x;
        bounds.push(((cum * n as f64).round() as usize).min(n));
    }
    *bounds.last_mut().unwrap() = n;
    let rects: Vec<IntRect> = (0..p)
        .map(|i| IntRect::new(0, n, bounds[i], bounds[i + 1].max(bounds[i])))
        .collect();
    let comm_volume = rects
        .iter()
        .filter(|r| !r.is_degenerate())
        .map(|r| r.half_perimeter() as f64)
        .sum();
    let finish: Vec<f64> = rects
        .iter()
        .zip(platform.iter())
        .map(|(r, w)| r.area() as f64 * w.w())
        .collect();
    RowBandsOutcome {
        imbalance: dlt_sim::imbalance(&finish),
        comm_volume,
        rects,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlt_partition::grid::covers_exactly;

    #[test]
    fn bands_tile_the_domain() {
        let platform = Platform::from_speeds(&[1.0, 3.0, 2.0]).unwrap();
        let out = row_bands(&platform, 97);
        assert!(covers_exactly(&out.rects, 97));
        for r in &out.rects {
            assert_eq!(r.width(), 97); // full width: all of b
        }
    }

    #[test]
    fn volume_is_n_plus_pn() {
        let platform = Platform::homogeneous(8, 1.0, 1.0).unwrap();
        let n = 64;
        let out = row_bands(&platform, n);
        assert!((out.comm_volume - (n + 8 * n) as f64).abs() < 1e-9);
    }

    #[test]
    fn balanced_by_construction() {
        let platform = Platform::from_speeds(&[1.0, 2.0, 5.0]).unwrap();
        let out = row_bands(&platform, 800);
        assert!(out.imbalance < 0.02, "imbalance {}", out.imbalance);
    }

    #[test]
    fn sqrt_p_worse_than_2d_even_homogeneous() {
        // 1D: (p+1)N vs LB 2N√p → ratio ≈ √p/2.
        let p = 64;
        let platform = Platform::homogeneous(p, 1.0, 1.0).unwrap();
        let n = 640;
        let out = row_bands(&platform, n);
        let lb = crate::strategies::comm_lower_bound(&platform, n);
        let ratio = out.comm_volume / lb;
        assert!(ratio > (p as f64).sqrt() / 2.0 * 0.95, "ratio {ratio}");
        // ...while the 2D Commhet stays near 1.
        let het = crate::het::het_rects(&platform, n);
        assert!(het.comm_volume / lb < 1.05);
    }

    #[test]
    fn extreme_shares_may_degenerate_but_still_tile() {
        let platform = Platform::from_speeds(&[1e-6, 1.0, 1.0]).unwrap();
        let out = row_bands(&platform, 10);
        assert!(covers_exactly(&out.rects, 10));
    }
}
