//! The `Commhom` and `Commhom/k` strategies: homogeneous square blocks
//! dispatched demand-driven (Section 4.1.1 and the refined variant of
//! Section 4.3).

use dlt_partition::IntRect;
use dlt_platform::Platform;
use dlt_sim::{simulate_demand, DemandConfig, DemandReport, DemandTask};

/// Outcome of a homogeneous-blocks run.
#[derive(Debug, Clone, PartialEq)]
pub struct HomBlocksOutcome {
    /// The square (edge blocks may be clipped) tiles of the `N×N` domain.
    pub blocks: Vec<IntRect>,
    /// Which worker executed each block (parallel to `blocks`).
    pub owner: Vec<usize>,
    /// Block side `D` used.
    pub block_side: usize,
    /// Refinement factor `k` (1 for plain `Commhom`).
    pub k: usize,
    /// Total data shipped: `Σ (width + height)` over all assigned blocks —
    /// the paper's no-reuse accounting.
    pub comm_volume: f64,
    /// Load imbalance `e = (tmax − tmin)/tmin` of the demand-driven run.
    pub imbalance: f64,
    /// Raw demand-driven report (finish times, per-worker assignment).
    pub demand: DemandReport,
}

/// Block side of the `Commhom` strategy: the slowest worker must receive
/// exactly one block, so `D² = x₁·N²` with `x₁` the smallest normalized
/// speed. Clamped to `[1, N]`.
pub fn hom_block_side(platform: &Platform, n: usize) -> usize {
    assert!(n > 0);
    let x1 = platform.min_speed() / platform.total_speed();
    ((x1.sqrt() * n as f64).floor() as usize).clamp(1, n)
}

/// Tiles the `N×N` domain with `side × side` squares (right/bottom edges
/// clipped), row-major order.
pub fn tile_domain(n: usize, side: usize) -> Vec<IntRect> {
    assert!(n > 0 && side > 0);
    let mut blocks = Vec::new();
    let mut row = 0;
    while row < n {
        let row1 = (row + side).min(n);
        let mut col = 0;
        while col < n {
            let col1 = (col + side).min(n);
            blocks.push(IntRect::new(col, col1, row, row1));
            col = col1;
        }
        row = row1;
    }
    blocks
}

/// Runs `Commhom` (with optional refinement factor `k` dividing the block
/// side): tile, then dispatch demand-driven where executing a block costs
/// `area·w_i` and ships `width + height` data.
pub fn hom_blocks_with_k(platform: &Platform, n: usize, k: usize) -> HomBlocksOutcome {
    assert!(k >= 1);
    let side = (hom_block_side(platform, n) / k).max(1);
    let blocks = tile_domain(n, side);
    let tasks: Vec<DemandTask> = blocks
        .iter()
        .map(|b| DemandTask::new(b.half_perimeter() as f64, b.area() as f64))
        .collect();
    let demand = simulate_demand(platform, &tasks, DemandConfig::default());

    let mut owner = vec![usize::MAX; blocks.len()];
    for (w, assigned) in demand.assignments.iter().enumerate() {
        for &b in assigned {
            owner[b] = w;
        }
    }
    debug_assert!(owner.iter().all(|&o| o != usize::MAX));

    HomBlocksOutcome {
        comm_volume: demand.total_comm(),
        imbalance: demand.imbalance(),
        block_side: side,
        k,
        owner,
        blocks,
        demand,
    }
}

/// Plain `Commhom` (`k = 1`).
pub fn hom_blocks(platform: &Platform, n: usize) -> HomBlocksOutcome {
    hom_blocks_with_k(platform, n, 1)
}

/// Outcome of the paper's *arithmetic* `Commhom` accounting (see
/// [`hom_blocks_abstract`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AbstractHomOutcome {
    /// Number of equal blocks dispatched.
    pub n_blocks: usize,
    /// (Possibly fractional) block side `D = √x₁·N/k`.
    pub block_side: f64,
    /// Total data shipped: `n_blocks · 2D`.
    pub comm_volume: f64,
    /// Demand-driven load imbalance.
    pub imbalance: f64,
    /// Refinement factor used.
    pub k: usize,
    /// Raw demand-driven report.
    pub demand: DemandReport,
}

/// The paper's Section 4.1.1 accounting of `Commhom`: exactly
/// `B = k²/x₁` square blocks of side `D = √x₁·N/k` ("let us assume that N
/// is large so that we can assume this value is an integer"), each
/// shipping `2D` data, dispatched demand-driven. This is what Figure 4
/// plots; the geometric [`hom_blocks`] additionally pays for clipped edge
/// blocks when `N/D` is not integral, which is kept as an ablation.
pub fn hom_blocks_abstract(platform: &Platform, n: usize, k: usize) -> AbstractHomOutcome {
    assert!(n > 0 && k >= 1);
    let x1 = platform.min_speed() / platform.total_speed();
    let d = (x1.sqrt() * n as f64 / k as f64).min(n as f64);
    // Ceil, not round: every cell of the domain must be covered, so the
    // block count can only round *up*. This also keeps the arithmetic
    // volume ≥ LB (B·2D ≥ 2N/√x₁ ≥ 2NΣ√x_i by Cauchy–Schwarz). The small
    // epsilon keeps exact counts (homogeneous platforms give B = k²·p
    // exactly) from overshooting by one block through float noise.
    let raw = ((n as f64) / d).powi(2);
    let n_blocks = (raw - 1e-6).ceil().max(1.0) as usize;
    let tasks = vec![DemandTask::new(2.0 * d, d * d); n_blocks];
    let demand = simulate_demand(platform, &tasks, DemandConfig::default());
    AbstractHomOutcome {
        n_blocks,
        block_side: d,
        comm_volume: demand.total_comm(),
        imbalance: demand.imbalance(),
        k,
        demand,
    }
}

/// `Commhom/k` under the arithmetic accounting: refine `k = 1, 2, …`
/// until the demand-driven imbalance reaches `target` (1% in the paper)
/// or blocks shrink below one cell.
pub fn hom_blocks_refined_abstract(
    platform: &Platform,
    n: usize,
    target: f64,
) -> AbstractHomOutcome {
    assert!(target >= 0.0);
    let mut best: Option<AbstractHomOutcome> = None;
    let mut k = 1;
    loop {
        let outcome = hom_blocks_abstract(platform, n, k);
        let done = outcome.imbalance <= target;
        let degenerate = outcome.block_side <= 1.0;
        let better = best
            .as_ref()
            .is_none_or(|b| outcome.imbalance < b.imbalance);
        if better {
            best = Some(outcome);
        }
        if done || degenerate {
            break;
        }
        k += 1;
    }
    best.expect("at least one refinement level was evaluated")
}

/// `Commhom/k`: doubles down on block refinement (`k = 1, 2, 3, …`) until
/// the demand-driven imbalance is at most `target` (the paper stops at
/// `e ≤ 1%`) or the blocks degenerate to single cells. Returns the first
/// outcome meeting the target, or the best (lowest-imbalance) one seen.
pub fn hom_blocks_refined(platform: &Platform, n: usize, target: f64) -> HomBlocksOutcome {
    assert!(target >= 0.0);
    let mut best: Option<HomBlocksOutcome> = None;
    let base_side = hom_block_side(platform, n);
    let mut k = 1;
    loop {
        let outcome = hom_blocks_with_k(platform, n, k);
        let side = outcome.block_side;
        let done = outcome.imbalance <= target;
        let better = best
            .as_ref()
            .is_none_or(|b| outcome.imbalance < b.imbalance);
        if better {
            best = Some(outcome);
        }
        if done || side == 1 || k >= base_side {
            break;
        }
        k += 1;
    }
    best.expect("at least one refinement level was evaluated")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_side_slowest_gets_one_block() {
        // Homogeneous p=4: x1 = 1/4 → D = N/2, 4 blocks, one each.
        let platform = Platform::homogeneous(4, 1.0, 1.0).unwrap();
        assert_eq!(hom_block_side(&platform, 100), 50);
        let out = hom_blocks(&platform, 100);
        assert_eq!(out.blocks.len(), 4);
        assert_eq!(out.demand.task_counts(), vec![1, 1, 1, 1]);
        assert!(out.imbalance < 1e-12);
    }

    #[test]
    fn tile_covers_domain_exactly() {
        for (n, side) in [(10usize, 3usize), (16, 4), (7, 7), (5, 1)] {
            let blocks = tile_domain(n, side);
            let area: usize = blocks.iter().map(IntRect::area).sum();
            assert_eq!(area, n * n, "n={n} side={side}");
            for b in &blocks {
                assert!(b.col1 <= n && b.row1 <= n);
                assert!(b.width() <= side && b.height() <= side);
            }
        }
    }

    #[test]
    fn comm_volume_matches_analytic_when_divisible() {
        // Homogeneous p=4, N=100: volume = 4 blocks × 2·50 = 400 = 2N√p.
        let platform = Platform::homogeneous(4, 1.0, 1.0).unwrap();
        let out = hom_blocks(&platform, 100);
        assert!((out.comm_volume - 400.0).abs() < 1e-9);
    }

    #[test]
    fn two_class_platform_fast_workers_get_more_blocks() {
        let platform = Platform::two_class(4, 1.0, 3.0).unwrap();
        let out = hom_blocks(&platform, 120);
        let counts = out.demand.task_counts();
        assert!(counts[2] > counts[0]);
        assert!(counts[3] > counts[1]);
        let total: usize = counts.iter().sum();
        assert_eq!(total, out.blocks.len());
    }

    #[test]
    fn refinement_reduces_imbalance() {
        // Speeds with awkward ratios: k = 1 leaves imbalance, refinement
        // brings it under 1%.
        let platform = Platform::from_speeds(&[1.0, 1.7, 2.3, 3.1]).unwrap();
        let coarse = hom_blocks(&platform, 256);
        let refined = hom_blocks_refined(&platform, 256, 0.01);
        assert!(refined.imbalance <= coarse.imbalance + 1e-12);
        assert!(
            refined.imbalance <= 0.01 || refined.block_side == 1,
            "imbalance {} side {}",
            refined.imbalance,
            refined.block_side
        );
        assert!(refined.k >= 1);
    }

    #[test]
    fn refinement_multiplies_volume() {
        // Volume scales like k (blocks: k²/x₁, data per block 2D/k).
        let platform = Platform::from_speeds(&[1.0, 1.0, 1.0, 1.0]).unwrap();
        let k1 = hom_blocks_with_k(&platform, 128, 1);
        let k2 = hom_blocks_with_k(&platform, 128, 2);
        let k4 = hom_blocks_with_k(&platform, 128, 4);
        assert!((k2.comm_volume / k1.comm_volume - 2.0).abs() < 0.05);
        assert!((k4.comm_volume / k1.comm_volume - 4.0).abs() < 0.05);
    }

    #[test]
    fn owners_cover_every_block() {
        let platform = Platform::from_speeds(&[1.0, 5.0]).unwrap();
        let out = hom_blocks(&platform, 64);
        assert_eq!(out.owner.len(), out.blocks.len());
        assert!(out.owner.iter().all(|&o| o < 2));
    }

    #[test]
    fn single_worker_gets_everything() {
        let platform = Platform::from_speeds(&[2.0]).unwrap();
        let out = hom_blocks(&platform, 32);
        assert_eq!(out.blocks.len(), 1);
        assert_eq!(out.block_side, 32);
        assert!((out.comm_volume - 64.0).abs() < 1e-12);
    }

    #[test]
    fn extreme_heterogeneity_clamps_block_side() {
        // x1 tiny: D would round to 0 → clamped to 1.
        let platform = Platform::from_speeds(&[1e-6, 1.0]).unwrap();
        let side = hom_block_side(&platform, 10);
        assert_eq!(side, 1);
        let out = hom_blocks(&platform, 10);
        assert_eq!(out.blocks.len(), 100);
    }
}
