//! Per-worker memory footprints (the paper's Figure 2): which entries of
//! the vectors `a` and `b` a worker must hold given its assigned chunks.
//!
//! The demand-driven `Commhom` strategy scatters a fast worker's blocks all
//! over the domain, so its footprint approaches the *whole* of `a` and `b`;
//! the `Commhet` rectangle confines it to `width + height` entries. The
//! communication *volume* counts every shipped copy; the *footprint* counts
//! distinct entries (i.e. what perfect caching could achieve).

use dlt_partition::IntRect;

/// Distinct input data a worker touches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Footprint {
    /// Number of distinct `a` (row) indices.
    pub a_entries: usize,
    /// Number of distinct `b` (column) indices.
    pub b_entries: usize,
}

impl Footprint {
    /// Total distinct entries.
    pub fn total(&self) -> usize {
        self.a_entries + self.b_entries
    }
}

/// Computes the footprint of every worker from a block/rectangle
/// assignment: `owner[i]` is the worker that executes `blocks[i]`.
pub fn footprints(n: usize, blocks: &[IntRect], owner: &[usize], p: usize) -> Vec<Footprint> {
    assert_eq!(blocks.len(), owner.len());
    let mut rows = vec![vec![false; n]; p];
    let mut cols = vec![vec![false; n]; p];
    for (block, &w) in blocks.iter().zip(owner) {
        assert!(w < p, "owner {w} out of range");
        for cell in rows[w][block.row0..block.row1].iter_mut() {
            *cell = true;
        }
        for cell in cols[w][block.col0..block.col1].iter_mut() {
            *cell = true;
        }
    }
    (0..p)
        .map(|w| Footprint {
            a_entries: rows[w].iter().filter(|&&x| x).count(),
            b_entries: cols[w].iter().filter(|&&x| x).count(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlt_platform::Platform;

    #[test]
    fn single_rect_footprint_is_half_perimeter() {
        let blocks = vec![IntRect::new(2, 7, 3, 9)];
        let f = footprints(10, &blocks, &[0], 1);
        assert_eq!(f[0].a_entries, 6);
        assert_eq!(f[0].b_entries, 5);
        assert_eq!(f[0].total(), 11);
    }

    #[test]
    fn scattered_blocks_inflate_footprint() {
        // Two diagonal blocks: distinct rows and cols add up.
        let blocks = vec![IntRect::new(0, 2, 0, 2), IntRect::new(8, 10, 8, 10)];
        let f = footprints(10, &blocks, &[0, 0], 1);
        assert_eq!(f[0].a_entries, 4);
        assert_eq!(f[0].b_entries, 4);
    }

    #[test]
    fn overlapping_rows_counted_once() {
        // Two horizontally adjacent blocks share rows.
        let blocks = vec![IntRect::new(0, 2, 0, 2), IntRect::new(2, 4, 0, 2)];
        let f = footprints(4, &blocks, &[0, 0], 1);
        assert_eq!(f[0].a_entries, 2); // same two rows
        assert_eq!(f[0].b_entries, 4);
    }

    #[test]
    fn hom_vs_het_footprint_for_fast_worker() {
        // Figure 2's story: on a strongly two-class platform, the fast
        // workers' footprint under Commhom is much larger than under
        // Commhet.
        let platform = Platform::two_class(4, 1.0, 12.0).unwrap();
        let n = 260;
        let hom = crate::hom::hom_blocks(&platform, n);
        let hom_fp = footprints(n, &hom.blocks, &hom.owner, 4);
        let het = crate::het::het_rects(&platform, n);
        let owners: Vec<usize> = (0..4).collect();
        let het_fp = footprints(n, &het.rects, &owners, 4);
        // Worker 3 is fast (speed 12): demand-driven scatters its blocks
        // across the whole domain, so its footprint approaches 2N, whereas
        // the Commhet rectangle needs only its half-perimeter.
        assert!(
            hom_fp[3].total() as f64 > 1.3 * het_fp[3].total() as f64,
            "hom {} vs het {}",
            hom_fp[3].total(),
            het_fp[3].total()
        );
        // Demand-driven footprint of the fast worker covers nearly all of a
        // and b (Figure 2(b)'s "high memory footprint").
        assert!(hom_fp[3].total() as f64 > 1.8 * n as f64);
    }

    #[test]
    fn empty_assignment_is_zero() {
        let f = footprints(5, &[], &[], 3);
        assert!(f.iter().all(|fp| fp.total() == 0));
        assert_eq!(f.len(), 3);
    }
}
