//! Affinity-aware demand-driven scheduling — the mechanism the paper's
//! conclusion proposes:
//!
//! > "favoring among all available tasks on the master those that share
//! > blocks with data already stored on a slave processor in the
//! > demand-driven process would improve the results."
//!
//! A free worker no longer takes the head of the queue blindly: it scans a
//! bounded *window* of pending blocks and picks the one that overlaps most
//! with the `a`/`b` entries it has already received, shipping only the
//! missing rows and columns. `window = 1` degenerates to plain FIFO, so
//! the improvement is measured against the exact same executor.

use dlt_partition::IntRect;
use dlt_platform::Platform;

/// Outcome of an affinity-aware demand-driven run.
#[derive(Debug, Clone, PartialEq)]
pub struct AffinityOutcome {
    /// Owner of each block (parallel to the input `blocks`).
    pub owner: Vec<usize>,
    /// Volume under the paper's no-reuse accounting (`Σ half-perimeters`
    /// over assignments) — identical for every window size.
    pub volume_no_reuse: f64,
    /// Volume actually shipped when workers cache received entries and
    /// only missing rows/columns move.
    pub volume_with_reuse: f64,
    /// Worker finish times (compute only, like the paper's `e`).
    pub finish_times: Vec<f64>,
    /// Scan window used.
    pub window: usize,
}

impl AffinityOutcome {
    /// Load imbalance `e = (tmax − tmin)/tmin`.
    pub fn imbalance(&self) -> f64 {
        dlt_sim::imbalance(&self.finish_times)
    }
}

/// Runs the demand-driven executor with an affinity scan window over the
/// given blocks of an `n×n` domain.
///
/// Deterministic: the earliest-free worker (ties by id) chooses, among the
/// first `window` still-pending blocks in queue order, the one whose rows
/// and columns it already caches the most of (ties by queue position).
pub fn demand_driven_affinity(
    platform: &Platform,
    n: usize,
    blocks: &[IntRect],
    window: usize,
) -> AffinityOutcome {
    assert!(window >= 1, "window must be at least 1");
    let p = platform.len();
    let mut pending: Vec<bool> = vec![true; blocks.len()];
    let mut n_pending = blocks.len();
    let mut queue_head = 0usize; // first index that may still be pending
    let mut owner = vec![usize::MAX; blocks.len()];
    let mut finish = vec![0.0f64; p];
    let mut cached_rows = vec![vec![false; n]; p];
    let mut cached_cols = vec![vec![false; n]; p];
    let mut volume_no_reuse = 0.0;
    let mut volume_with_reuse = 0.0;

    while n_pending > 0 {
        // Earliest-free worker, ties by id.
        let w = (0..p)
            .min_by(|&a, &b| finish[a].total_cmp(&finish[b]).then(a.cmp(&b)))
            .expect("non-empty platform");
        // Scan up to `window` pending blocks from the queue head.
        while queue_head < blocks.len() && !pending[queue_head] {
            queue_head += 1;
        }
        let mut best: Option<(usize, usize)> = None; // (block idx, overlap)
        let mut seen = 0;
        let mut idx = queue_head;
        while idx < blocks.len() && seen < window {
            if pending[idx] {
                let overlap = overlap_with_cache(&blocks[idx], &cached_rows[w], &cached_cols[w]);
                if best.is_none_or(|(_, o)| overlap > o) {
                    best = Some((idx, overlap));
                }
                seen += 1;
            }
            idx += 1;
        }
        let (chosen, overlap) = best.expect("pending blocks remain");
        pending[chosen] = false;
        n_pending -= 1;
        owner[chosen] = w;
        let block = &blocks[chosen];
        let hp = block.half_perimeter() as f64;
        volume_no_reuse += hp;
        volume_with_reuse += hp - overlap as f64;
        finish[w] += block.area() as f64 * platform.worker(w).w();
        for cell in cached_rows[w][block.row0..block.row1].iter_mut() {
            *cell = true;
        }
        for cell in cached_cols[w][block.col0..block.col1].iter_mut() {
            *cell = true;
        }
    }

    AffinityOutcome {
        owner,
        volume_no_reuse,
        volume_with_reuse,
        finish_times: finish,
        window,
    }
}

fn overlap_with_cache(block: &IntRect, rows: &[bool], cols: &[bool]) -> usize {
    let r = (block.row0..block.row1).filter(|&i| rows[i]).count();
    let c = (block.col0..block.col1).filter(|&j| cols[j]).count();
    r + c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom::tile_domain;

    fn run(platform: &Platform, n: usize, side: usize, window: usize) -> AffinityOutcome {
        let blocks = tile_domain(n, side);
        demand_driven_affinity(platform, n, &blocks, window)
    }

    #[test]
    fn every_block_gets_an_owner() {
        let platform = Platform::from_speeds(&[1.0, 3.0]).unwrap();
        let out = run(&platform, 64, 8, 4);
        assert!(out.owner.iter().all(|&o| o < 2));
    }

    #[test]
    fn window_one_is_fifo() {
        // With window 1 the choice is forced, so volumes and owners must
        // match a straight left-to-right replay.
        let platform = Platform::from_speeds(&[1.0, 2.0, 4.0]).unwrap();
        let n = 60;
        let blocks = tile_domain(n, 10);
        let out = demand_driven_affinity(&platform, n, &blocks, 1);
        // Replay manually.
        let mut finish = [0.0f64; 3];
        for (i, b) in blocks.iter().enumerate() {
            let w = (0..3)
                .min_by(|&a, &c| finish[a].total_cmp(&finish[c]).then(a.cmp(&c)))
                .unwrap();
            assert_eq!(out.owner[i], w, "block {i}");
            finish[w] += b.area() as f64 * platform.worker(w).w();
        }
    }

    #[test]
    fn no_reuse_volume_is_window_independent() {
        let platform = Platform::two_class(4, 1.0, 8.0).unwrap();
        let v1 = run(&platform, 128, 16, 1).volume_no_reuse;
        let v16 = run(&platform, 128, 16, 16).volume_no_reuse;
        assert!((v1 - v16).abs() < 1e-9);
    }

    #[test]
    fn affinity_reduces_shipped_volume() {
        // The paper's conclusion: preferring blocks sharing cached data
        // reduces the actually-shipped volume on heterogeneous platforms.
        let platform = Platform::two_class(4, 1.0, 8.0).unwrap();
        let fifo = run(&platform, 256, 16, 1);
        let affine = run(&platform, 256, 16, 32);
        assert!(
            affine.volume_with_reuse < fifo.volume_with_reuse,
            "affinity {} !< fifo {}",
            affine.volume_with_reuse,
            fifo.volume_with_reuse
        );
        // And reuse always beats the paper's no-reuse accounting.
        assert!(fifo.volume_with_reuse <= fifo.volume_no_reuse + 1e-9);
    }

    #[test]
    fn load_balance_is_preserved() {
        // Choosing by affinity must not wreck the demand-driven balance.
        let platform = Platform::two_class(4, 1.0, 8.0).unwrap();
        let fifo = run(&platform, 256, 8, 1);
        let affine = run(&platform, 256, 8, 32);
        assert!(
            affine.imbalance() < fifo.imbalance() + 0.25,
            "affinity imbalance {} vs fifo {}",
            affine.imbalance(),
            fifo.imbalance()
        );
    }

    #[test]
    fn single_worker_caches_everything_once() {
        let platform = Platform::from_speeds(&[1.0]).unwrap();
        let out = run(&platform, 32, 8, 8);
        // One worker eventually caches all of a and b: shipped volume is
        // bounded by 2N plus what the first blocks cost... in fact with
        // caching, total shipped = distinct rows + cols = 2N.
        assert!((out.volume_with_reuse - 64.0).abs() < 1e-9);
        assert!(out.volume_no_reuse > out.volume_with_reuse);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_rejected() {
        let platform = Platform::from_speeds(&[1.0]).unwrap();
        let _ = run(&platform, 8, 4, 0);
    }
}
