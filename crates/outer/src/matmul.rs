//! Matrix multiplication on a 2D data distribution (Section 4.2).
//!
//! The ScaLAPACK-style algorithm builds `C = A·B` from `N` successive
//! outer products: at step `k`, the owners of row `k` of `A` and column
//! `k` of `B` broadcast them, and every processor updates its rectangle
//! `C[I, J] += A[I, k]·B[k, J]`. Per step, the processor owning rectangle
//! `I × J` receives `|I| + |J|` elements, so the total communication is
//!
//! `N · Σ_i (|I_i| + |J_i|)` — `N` times the half-perimeter sum,
//!
//! which is why the outer-product ratio ρ of Section 4.1 carries over
//! verbatim to matrix multiplication. This module both *counts* that
//! volume ([`SummaSim`]) and *executes* the algorithm with real threads
//! ([`execute_partitioned_matmul`]) against the reference GEMM.

use dlt_linalg::{gemm_naive, Matrix};
use dlt_partition::IntRect;

/// Communication accounting for one SUMMA-style run over a rectangle
/// partition of the `N×N` result domain.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaSim {
    /// Problem size `N`.
    pub n: usize,
    /// Volume received per step (identical across steps for static
    /// partitions): `Σ half-perimeters`.
    pub per_step: f64,
    /// Total volume over the `N` steps.
    pub total: f64,
    /// Per-worker totals.
    pub per_worker: Vec<f64>,
}

/// Counts SUMMA communication volumes for a partition of the `N×N` domain.
pub fn summa_comm_volume(n: usize, rects: &[IntRect]) -> SummaSim {
    let per_worker: Vec<f64> = rects
        .iter()
        .map(|r| {
            if r.is_degenerate() {
                0.0
            } else {
                n as f64 * r.half_perimeter() as f64
            }
        })
        .collect();
    let total: f64 = per_worker.iter().sum();
    SummaSim {
        n,
        per_step: total / n as f64,
        total,
        per_worker,
    }
}

/// The classical homogeneous baseline: a `q × q` block grid over the
/// `N×N` domain (requires `p = q²` workers), as used by MapReduce/
/// ScaLAPACK implementations on homogeneous platforms. Returns one
/// rectangle per worker, row-major.
pub fn block_cyclic_rects(n: usize, q: usize) -> Vec<IntRect> {
    assert!(q >= 1 && q <= n, "grid must fit the domain");
    let mut rects = Vec::with_capacity(q * q);
    let bounds: Vec<usize> = (0..=q).map(|i| i * n / q).collect();
    for bi in 0..q {
        for bj in 0..q {
            rects.push(IntRect::new(
                bounds[bj],
                bounds[bj + 1],
                bounds[bi],
                bounds[bi + 1],
            ));
        }
    }
    rects
}

/// Executes the partitioned outer-product matrix multiplication: each
/// worker thread owns one rectangle of `C` and performs the `N` rank-1
/// updates `C[I,J] += A[I,k]·B[k,J]` exactly as the distributed algorithm
/// would, on its private buffer. The assembled result is returned together
/// with the max deviation from the reference GEMM.
///
/// Panics when the rectangles do not tile the `N×N` domain.
pub fn execute_partitioned_matmul(a: &Matrix, b: &Matrix, rects: &[IntRect]) -> (Matrix, f64) {
    let n = a.rows();
    assert_eq!(a.cols(), n, "square matrices required");
    assert_eq!(b.rows(), n);
    assert_eq!(b.cols(), n);
    assert!(
        dlt_partition::grid::covers_exactly(rects, n),
        "rectangles must tile the domain"
    );

    // Each worker computes its rectangle into a private dense buffer.
    let locals: Vec<(IntRect, Vec<f64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = rects
            .iter()
            .filter(|r| !r.is_degenerate())
            .map(|&r| {
                scope.spawn(move || {
                    let (h, w) = (r.height(), r.width());
                    let mut local = vec![0.0f64; h * w];
                    for k in 0..n {
                        // Receive A[I, k] and B[k, J] (the broadcast), then
                        // rank-1 update.
                        for (di, row) in local.chunks_mut(w).enumerate() {
                            let aval = a.get(r.row0 + di, k);
                            if aval == 0.0 {
                                continue;
                            }
                            let brow = &b.row(k)[r.col0..r.col1];
                            for (cell, &bv) in row.iter_mut().zip(brow) {
                                *cell += aval * bv;
                            }
                        }
                    }
                    (r, local)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("matmul worker panicked"))
            .collect()
    });

    let mut c = Matrix::zeros(n, n);
    for (r, local) in locals {
        for (di, row) in local.chunks(r.width()).enumerate() {
            for (dj, &v) in row.iter().enumerate() {
                c.set(r.row0 + di, r.col0 + dj, v);
            }
        }
    }
    let reference = gemm_naive(a, b);
    let err = c.max_abs_diff(&reference);
    (c, err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlt_partition::grid::covers_exactly;
    use dlt_platform::Platform;
    use rand::SeedableRng;

    fn random_square(n: usize, seed: u64) -> Matrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Matrix::random(n, n, &mut rng)
    }

    #[test]
    fn block_cyclic_grid_tiles() {
        for (n, q) in [(16usize, 4usize), (17, 4), (9, 3), (5, 1)] {
            let rects = block_cyclic_rects(n, q);
            assert_eq!(rects.len(), q * q);
            assert!(covers_exactly(&rects, n), "n={n} q={q}");
        }
    }

    #[test]
    fn summa_volume_equals_n_times_half_perimeters() {
        let rects = block_cyclic_rects(16, 4);
        let sim = summa_comm_volume(16, &rects);
        let hp: f64 = rects.iter().map(|r| r.half_perimeter() as f64).sum();
        assert!((sim.total - 16.0 * hp).abs() < 1e-9);
        assert!((sim.per_step - hp).abs() < 1e-9);
        assert_eq!(sim.per_worker.len(), 16);
    }

    #[test]
    fn summa_ratio_matches_outer_product_ratio() {
        // The MM ratio hom/het equals the outer-product ratio, since both
        // are proportional to half-perimeter sums (Section 4.2).
        let platform = Platform::two_class(4, 1.0, 9.0).unwrap();
        let n = 360;
        let het = crate::het::het_rects(&platform, n);
        let hom = crate::hom::hom_blocks(&platform, n);
        let mm_het = summa_comm_volume(n, &het.rects).total;
        // For hom blocks each *assignment* pays its half-perimeter per step.
        let mm_hom: f64 = n as f64 * hom.comm_volume;
        let outer_ratio = hom.comm_volume / het.comm_volume;
        let mm_ratio = mm_hom / mm_het;
        assert!((outer_ratio - mm_ratio).abs() < 1e-9);
    }

    #[test]
    fn partitioned_matmul_matches_reference_on_grid() {
        let n = 24;
        let a = random_square(n, 1);
        let b = random_square(n, 2);
        let rects = block_cyclic_rects(n, 3);
        let (_, err) = execute_partitioned_matmul(&a, &b, &rects);
        assert!(err < 1e-10, "max error {err}");
    }

    #[test]
    fn partitioned_matmul_matches_reference_on_peri_sum_partition() {
        let platform = Platform::from_speeds(&[1.0, 3.0, 2.0, 5.0, 4.0]).unwrap();
        let n = 40;
        let het = crate::het::het_rects(&platform, n);
        let a = random_square(n, 3);
        let b = random_square(n, 4);
        let (_, err) = execute_partitioned_matmul(&a, &b, &het.rects);
        assert!(err < 1e-10, "max error {err}");
    }

    #[test]
    fn identity_partitioned_multiply() {
        let n = 12;
        let a = random_square(n, 5);
        let id = Matrix::identity(n);
        let rects = block_cyclic_rects(n, 2);
        let (c, err) = execute_partitioned_matmul(&a, &id, &rects);
        assert!(err < 1e-12);
        assert!(c.approx_eq(&a, 1e-12));
    }

    #[test]
    #[should_panic(expected = "tile the domain")]
    fn non_tiling_rects_panic() {
        let a = random_square(4, 6);
        let b = random_square(4, 7);
        let rects = vec![IntRect::new(0, 2, 0, 4)]; // covers half the domain
        let _ = execute_partitioned_matmul(&a, &b, &rects);
    }

    #[test]
    fn degenerate_rects_are_skipped() {
        let n = 10;
        let mut rects = vec![IntRect::new(0, 10, 0, 10)];
        rects.push(IntRect::new(10, 10, 0, 0)); // degenerate
        let a = random_square(n, 8);
        let b = random_square(n, 9);
        let (_, err) = execute_partitioned_matmul(&a, &b, &rects);
        assert!(err < 1e-10);
        let sim = summa_comm_volume(n, &rects);
        assert_eq!(sim.per_worker[1], 0.0);
    }
}
