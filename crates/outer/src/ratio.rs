//! Closed-form communication-volume analysis (Sections 4.1.1–4.1.3).

use dlt_platform::Platform;

/// Analytic `Commhom` volume (Section 4.1.1), assuming the idealized
/// divisibility of the paper's derivation:
///
/// `Commhom = (1/x₁) · 2N√x₁ = 2N·√(Σ s_i / s₁)`.
pub fn commhom_analytic(platform: &Platform, n: usize) -> f64 {
    2.0 * n as f64 * (platform.total_speed() / platform.min_speed()).sqrt()
}

/// Analytic upper bound on the `Commhet` volume (Section 4.1.2):
///
/// `Commhet ≤ (7N/2) Σ √x_i = (7/4)·LBComm`.
pub fn commhet_upper_bound(platform: &Platform, n: usize) -> f64 {
    1.75 * crate::strategies::comm_lower_bound(platform, n)
}

/// The paper's lower bound on the ratio `ρ = Commhom / Commhet`
/// (Section 4.1.3):
///
/// `ρ ≥ (4/7) · Σ s_i / (√s₁ · Σ √s_i)`.
pub fn rho_lower_bound(platform: &Platform) -> f64 {
    let sum_s = platform.total_speed();
    let sqrt_s1 = platform.min_speed().sqrt();
    let sum_sqrt: f64 = platform.iter().map(|w| w.speed().sqrt()).sum();
    (4.0 / 7.0) * sum_s / (sqrt_s1 * sum_sqrt)
}

/// Two-class bound (end of Section 4.1.3): when half the workers run at
/// speed `s₁` and half at `k·s₁`,
///
/// `ρ ≥ (1 + k)/(1 + √k) ≥ √k − 1`.
pub fn two_class_rho_bound(k: f64) -> f64 {
    assert!(k >= 1.0);
    (1.0 + k) / (1.0 + k.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commhom_homogeneous() {
        // p equal workers: 2N√p.
        let platform = Platform::homogeneous(25, 2.0, 1.0).unwrap();
        assert!((commhom_analytic(&platform, 100) - 2.0 * 100.0 * 5.0).abs() < 1e-9);
    }

    #[test]
    fn commhom_analytic_matches_simulated_when_divisible() {
        // Speed ratios 1:4 on 2 workers: 1/x1 = 5 blocks... not a perfect
        // square tiling, so test the exactly divisible homogeneous case.
        let platform = Platform::homogeneous(4, 1.0, 1.0).unwrap();
        let sim = crate::hom::hom_blocks(&platform, 120);
        assert!((commhom_analytic(&platform, 120) - sim.comm_volume).abs() < 1e-9);
    }

    #[test]
    fn rho_bound_homogeneous_is_four_sevenths() {
        let platform = Platform::homogeneous(10, 3.0, 1.0).unwrap();
        assert!((rho_lower_bound(&platform) - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn rho_bound_grows_with_heterogeneity() {
        let mild = Platform::two_class(10, 1.0, 2.0).unwrap();
        let wild = Platform::two_class(10, 1.0, 64.0).unwrap();
        assert!(rho_lower_bound(&wild) > rho_lower_bound(&mild));
    }

    #[test]
    fn two_class_bound_values() {
        assert!((two_class_rho_bound(1.0) - 1.0).abs() < 1e-12);
        // (1+4)/(1+2) = 5/3.
        assert!((two_class_rho_bound(4.0) - 5.0 / 3.0).abs() < 1e-12);
        // Dominates √k − 1 everywhere.
        for k in [1.0f64, 2.0, 9.0, 100.0, 1e4] {
            assert!(two_class_rho_bound(k) >= k.sqrt() - 1.0);
        }
    }

    #[test]
    fn two_class_platform_bound_consistency() {
        // For the p/2 + p/2 platform the general ρ bound equals
        // (4/7)·(1+k)/(√1·(1+√k)) — i.e. 4/7 times the two-class bound.
        let k = 9.0;
        let platform = Platform::two_class(8, 1.0, k).unwrap();
        let general = rho_lower_bound(&platform);
        let two_class = two_class_rho_bound(k);
        assert!((general - (4.0 / 7.0) * two_class).abs() < 1e-12);
    }

    #[test]
    fn measured_rho_respects_two_class_trend() {
        // Measured ρ = Commhom/Commhet grows roughly like √k.
        let n = 2048;
        let mut prev_rho = 0.0;
        for k in [4.0, 16.0, 64.0] {
            let platform = Platform::two_class(8, 1.0, k).unwrap();
            let hom = crate::hom::hom_blocks(&platform, n).comm_volume;
            let het = crate::het::het_rects(&platform, n).comm_volume;
            let rho = hom / het;
            assert!(rho > prev_rho, "k={k}: rho {rho} did not grow");
            // ρ must respect the analytic lower bound (het within 7/4·LB).
            assert!(rho >= rho_lower_bound(&platform) * 0.95, "k={k}");
            prev_rho = rho;
        }
    }

    #[test]
    #[should_panic]
    fn two_class_bound_rejects_k_below_one() {
        let _ = two_class_rho_bound(0.5);
    }
}
