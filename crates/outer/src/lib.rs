#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # dlt-outer
//!
//! Data-distribution strategies for the paper's flagship non-linear
//! workloads (Section 4): the **outer product** `aᵀ × b` (`N²` work on `N`
//! data) and **matrix multiplication** (`N³` work on `N²` data, built from
//! outer products à la ScaLAPACK).
//!
//! Since super-linear loads are not divisible, the data must be
//! *replicated*; the communication volume then depends entirely on how the
//! `N × N` computation domain is cut:
//!
//! * [`hom_blocks`] — **`Commhom`**: the MapReduce-style baseline. Square
//!   blocks sized so the *slowest* worker gets exactly one
//!   (`D = √x₁·N`), handed out demand-driven. Each block ships `2D` data.
//! * [`hom_blocks_refined`] — **`Commhom/k`**: same, but the block side is
//!   divided by increasing `k` until the demand-driven run's load
//!   imbalance `e = (tmax − tmin)/tmin` drops below a threshold (1% in the
//!   paper) — the realistic variant, since `s_i/s_1` is never an integer.
//! * [`het_rects`] — **`Commhet`**: one rectangle per worker with area
//!   proportional to its speed, chosen by the PERI-SUM partitioner of
//!   [`dlt_partition`]; communication is the sum of half-perimeters,
//!   guaranteed within `7/4` of the lower bound `LB = 2N Σ√x_i` and ~2% in
//!   practice.
//!
//! [`matmul`] lifts all of this to matrix multiplication (communication
//! per SUMMA step is again the half-perimeter sum) and can *execute* the
//! partitioned algorithm with real threads against the reference GEMM of
//! [`dlt_linalg`]. [`footprint`] measures the per-worker memory footprints
//! of Figure 2; [`ratio`] carries the closed-form ρ bounds of
//! Section 4.1.3.

pub mod affinity;
pub mod footprint;
pub mod het;
pub mod hom;
pub mod matmul;
pub mod ratio;
pub mod rows;
pub mod strategies;

pub use affinity::{demand_driven_affinity, AffinityOutcome};
pub use dlt_partition::IntRect;
pub use footprint::{footprints, Footprint};
pub use het::het_rects;
pub use hom::{
    hom_block_side, hom_blocks, hom_blocks_abstract, hom_blocks_refined,
    hom_blocks_refined_abstract, tile_domain,
};
pub use matmul::{block_cyclic_rects, execute_partitioned_matmul, summa_comm_volume, SummaSim};
pub use ratio::{commhet_upper_bound, commhom_analytic, rho_lower_bound, two_class_rho_bound};
pub use rows::{row_bands, RowBandsOutcome};
pub use strategies::{comm_lower_bound, evaluate, Strategy, StrategyReport};
