//! Unified strategy interface and the communication lower bound — the
//! machinery behind the paper's Figure 4.

use crate::het::het_rects;
use crate::hom::{hom_blocks, hom_blocks_abstract, hom_blocks_refined_abstract};
use dlt_platform::Platform;

/// The load imbalance threshold the paper uses for `Commhom/k` ("the
/// stopping criterion for this process is when e ≤ 1%").
pub const PAPER_IMBALANCE_TARGET: f64 = 0.01;

/// The data-distribution strategies compared in Section 4.3 (plus one
/// ablation variant).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// `Commhom`: homogeneous blocks sized for the slowest worker,
    /// demand-driven, under the paper's arithmetic volume accounting
    /// (`B = 1/x₁` blocks of `2D` data each).
    HomBlocks,
    /// `Commhom/k`: homogeneous blocks refined until the imbalance drops
    /// below the threshold.
    HomBlocksRefined {
        /// Imbalance target `e` (the paper uses 0.01).
        target: f64,
    },
    /// `Commhet`: heterogeneity-aware rectangles via PERI-SUM.
    HetRects,
    /// Ablation: `Commhom` with *geometric* tiling of the integer grid —
    /// pays extra for clipped edge blocks whenever `N/D` is fractional
    /// (the paper assumes this away; the gap is measured in the benches).
    HomBlocksTiled,
}

impl Strategy {
    /// The paper's trio, in plot order.
    pub fn paper_strategies() -> [Strategy; 3] {
        [
            Strategy::HetRects,
            Strategy::HomBlocks,
            Strategy::HomBlocksRefined {
                target: PAPER_IMBALANCE_TARGET,
            },
        ]
    }

    /// Name used in figures and CSV headers.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::HomBlocks => "Commhom",
            Strategy::HomBlocksRefined { .. } => "Commhom/k",
            Strategy::HetRects => "Commhet",
            Strategy::HomBlocksTiled => "Commhom-tiled",
        }
    }
}

/// Evaluation of one strategy on one platform/domain.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyReport {
    /// Which strategy produced this report.
    pub strategy: Strategy,
    /// Total data shipped from the master (the paper's volume count).
    pub comm_volume: f64,
    /// `comm_volume / (2N Σ√x_i)` — the y-axis of Figure 4.
    pub ratio_to_lb: f64,
    /// Load imbalance `e` of the induced execution.
    pub imbalance: f64,
    /// Refinement factor `k` (1 unless `Commhom/k` refined).
    pub k: usize,
    /// Number of chunks shipped (blocks or rectangles).
    pub n_chunks: usize,
}

/// Lower bound on the communication volume of *any* perfectly
/// load-balanced distribution of the `N×N` outer-product domain
/// (Section 4.3): each worker would receive an `N√x_i × N√x_i` square, so
///
/// `LBComm = 2N Σ √x_i`.
pub fn comm_lower_bound(platform: &Platform, n: usize) -> f64 {
    let total = platform.total_speed();
    2.0 * n as f64
        * platform
            .iter()
            .map(|w| (w.speed() / total).sqrt())
            .sum::<f64>()
}

/// Evaluates `strategy` on `platform` for an `N×N` outer-product domain.
pub fn evaluate(platform: &Platform, n: usize, strategy: Strategy) -> StrategyReport {
    let lb = comm_lower_bound(platform, n);
    match strategy {
        Strategy::HomBlocks => {
            let out = hom_blocks_abstract(platform, n, 1);
            StrategyReport {
                strategy,
                comm_volume: out.comm_volume,
                ratio_to_lb: out.comm_volume / lb,
                imbalance: out.imbalance,
                k: out.k,
                n_chunks: out.n_blocks,
            }
        }
        Strategy::HomBlocksRefined { target } => {
            let out = hom_blocks_refined_abstract(platform, n, target);
            StrategyReport {
                strategy,
                comm_volume: out.comm_volume,
                ratio_to_lb: out.comm_volume / lb,
                imbalance: out.imbalance,
                k: out.k,
                n_chunks: out.n_blocks,
            }
        }
        Strategy::HomBlocksTiled => {
            let out = hom_blocks(platform, n);
            StrategyReport {
                strategy,
                comm_volume: out.comm_volume,
                ratio_to_lb: out.comm_volume / lb,
                imbalance: out.imbalance,
                k: out.k,
                n_chunks: out.blocks.len(),
            }
        }
        Strategy::HetRects => {
            let out = het_rects(platform, n);
            StrategyReport {
                strategy,
                comm_volume: out.comm_volume,
                ratio_to_lb: out.comm_volume / lb,
                imbalance: out.imbalance,
                k: 1,
                n_chunks: out.rects.len(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlt_platform::{PlatformSpec, SpeedDistribution};

    #[test]
    fn lower_bound_homogeneous() {
        // p equal workers: LB = 2N·p·√(1/p) = 2N√p.
        let platform = Platform::homogeneous(16, 1.0, 1.0).unwrap();
        assert!((comm_lower_bound(&platform, 100) - 800.0).abs() < 1e-9);
    }

    #[test]
    fn all_strategies_beat_nothing_and_respect_lb() {
        let platform = PlatformSpec::new(20, SpeedDistribution::paper_uniform())
            .generate(3)
            .unwrap();
        let n = 1000;
        for s in Strategy::paper_strategies() {
            let r = evaluate(&platform, n, s);
            assert!(
                r.ratio_to_lb >= 0.99,
                "{}: ratio {} below the bound",
                s.name(),
                r.ratio_to_lb
            );
            assert!(r.comm_volume > 0.0);
            assert!(r.n_chunks >= 1);
        }
    }

    #[test]
    fn homogeneous_platform_all_strategies_near_optimal() {
        // Figure 4(a): everything sits within a few % of the bound.
        let platform = Platform::homogeneous(16, 1.0, 1.0).unwrap();
        let n = 400;
        for s in Strategy::paper_strategies() {
            let r = evaluate(&platform, n, s);
            assert!(
                r.ratio_to_lb < 1.05,
                "{}: ratio {}",
                s.name(),
                r.ratio_to_lb
            );
        }
    }

    #[test]
    fn heterogeneous_platform_het_wins_big() {
        // Figure 4(b) shape: Commhom ≫ Commhet.
        let platform = PlatformSpec::new(50, SpeedDistribution::paper_uniform())
            .generate(9)
            .unwrap();
        let n = 5000;
        let het = evaluate(&platform, n, Strategy::HetRects);
        let hom = evaluate(&platform, n, Strategy::HomBlocks);
        let homk = evaluate(
            &platform,
            n,
            Strategy::HomBlocksRefined {
                target: PAPER_IMBALANCE_TARGET,
            },
        );
        assert!(het.ratio_to_lb < 1.1, "het {}", het.ratio_to_lb);
        assert!(hom.ratio_to_lb > 2.0, "hom {}", hom.ratio_to_lb);
        assert!(
            homk.ratio_to_lb >= hom.ratio_to_lb * 0.99,
            "refinement should not reduce volume: {} vs {}",
            homk.ratio_to_lb,
            hom.ratio_to_lb
        );
        assert!(homk.imbalance <= PAPER_IMBALANCE_TARGET || homk.k > 1);
    }

    #[test]
    fn names_and_paper_set() {
        let set = Strategy::paper_strategies();
        assert_eq!(set[0].name(), "Commhet");
        assert_eq!(set[1].name(), "Commhom");
        assert_eq!(set[2].name(), "Commhom/k");
    }

    #[test]
    fn refined_meets_imbalance_target() {
        let platform = PlatformSpec::new(30, SpeedDistribution::paper_lognormal())
            .generate(21)
            .unwrap();
        let r = evaluate(&platform, 2000, Strategy::HomBlocksRefined { target: 0.01 });
        assert!(r.imbalance <= 0.01 || r.k >= 1, "imbalance {}", r.imbalance);
    }
}
