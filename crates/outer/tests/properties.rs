//! Property-based tests for the distribution strategies.

use dlt_linalg::Matrix;
use dlt_outer::Strategy as DistStrategy;
use dlt_outer::{
    comm_lower_bound, evaluate, execute_partitioned_matmul, het_rects, hom_blocks,
    summa_comm_volume, tile_domain,
};
use dlt_platform::Platform;
use proptest::prelude::*;
use rand::SeedableRng;

fn platforms() -> impl Strategy<Value = Platform> {
    proptest::collection::vec(0.1f64..50.0, 1..24).prop_map(|s| Platform::from_speeds(&s).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn every_strategy_is_above_the_lower_bound(
        platform in platforms(),
        n in 32usize..600,
    ) {
        let lb = comm_lower_bound(&platform, n);
        for s in DistStrategy::paper_strategies() {
            let r = evaluate(&platform, n, s);
            // Integer-grid rounding can dip a hair below the continuous LB.
            prop_assert!(
                r.comm_volume >= lb * 0.95,
                "{}: volume {} vs LB {lb}", s.name(), r.comm_volume
            );
        }
    }

    #[test]
    fn het_respects_the_seven_fourths_guarantee(
        platform in platforms(),
        n in 64usize..600,
    ) {
        let r = evaluate(&platform, n, DistStrategy::HetRects);
        // 7/4·LB plus grid-rounding slack (±2p cells on the perimeter).
        let slack = 2.0 * platform.len() as f64;
        prop_assert!(
            r.comm_volume <= 1.75 * comm_lower_bound(&platform, n) + slack,
            "volume {} exceeds guarantee", r.comm_volume
        );
    }

    #[test]
    fn hom_blocks_partition_the_domain(
        platform in platforms(),
        n in 16usize..400,
    ) {
        let out = hom_blocks(&platform, n);
        let area: usize = out.blocks.iter().map(|b| b.area()).sum();
        prop_assert_eq!(area, n * n);
        prop_assert_eq!(out.owner.len(), out.blocks.len());
        let counted: usize = out.demand.task_counts().iter().sum();
        prop_assert_eq!(counted, out.blocks.len());
    }

    #[test]
    fn tiles_have_bounded_sides(n in 1usize..300, side in 1usize..300) {
        let side = side.min(n);
        let blocks = tile_domain(n, side);
        for b in &blocks {
            prop_assert!(b.width() >= 1 && b.width() <= side);
            prop_assert!(b.height() >= 1 && b.height() <= side);
        }
    }

    #[test]
    fn summa_per_worker_sums_to_total(platform in platforms(), n in 16usize..256) {
        let het = het_rects(&platform, n);
        let sim = summa_comm_volume(n, &het.rects);
        let s: f64 = sim.per_worker.iter().sum();
        prop_assert!((s - sim.total).abs() < 1e-6);
        prop_assert!((sim.per_step * n as f64 - sim.total).abs() < 1e-6);
    }

    #[test]
    fn partitioned_matmul_is_exact(
        speeds in proptest::collection::vec(0.2f64..10.0, 1..6),
        n in 4usize..24,
        seed in any::<u64>(),
    ) {
        let platform = Platform::from_speeds(&speeds).unwrap();
        let het = het_rects(&platform, n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::random(n, n, &mut rng);
        let b = Matrix::random(n, n, &mut rng);
        let (_, err) = execute_partitioned_matmul(&a, &b, &het.rects);
        prop_assert!(err < 1e-9, "error {err}");
    }

    #[test]
    fn refined_never_has_worse_imbalance_than_plain(
        platform in platforms(),
        n in 64usize..400,
    ) {
        let plain = evaluate(&platform, n, DistStrategy::HomBlocks);
        let refined = evaluate(&platform, n, DistStrategy::HomBlocksRefined { target: 0.01 });
        if plain.imbalance.is_finite() {
            prop_assert!(refined.imbalance <= plain.imbalance + 1e-9);
        }
    }
}
