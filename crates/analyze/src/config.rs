//! Rule configuration: per-rule module allowlists and scope knobs.
//!
//! The default configuration *is* the workspace contract — every entry
//! below encodes a decision documented in `docs/analysis.md`, and the
//! self-check test (`tests/self_check.rs`) asserts the live tree is
//! clean under it. Fixture tests build reduced configs through the
//! builder methods instead.

/// One allowlist entry: a module-path prefix plus the recorded reason.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Module path prefix (`core::fastmath` matches itself and any
    /// submodule).
    pub module: &'static str,
    /// Why the allowance exists (printed by `--list-rules`).
    pub reason: &'static str,
}

/// Analyzer configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// `raw-powf`: modules allowed to call `powf`/`exp`/`ln` directly.
    pub powf_allow: Vec<Allow>,
    /// `wall-clock-in-kernel`: modules allowed to read wall clocks.
    pub wall_clock_allow: Vec<Allow>,
    /// `unsafe-audit`: modules sanctioned to contain `unsafe` at all
    /// (each block still needs a `// SAFETY:` comment).
    pub unsafe_allow: Vec<Allow>,
    /// `nondeterministic-iteration`: crates (first module-path segment)
    /// the rule applies to — the engine/solver crates whose outputs
    /// must be bitwise reproducible.
    pub nondet_crates: Vec<&'static str>,
    /// `twin-coverage`: crates whose free `pub fn`s are checked against
    /// the fast-engine naming contract.
    pub twin_crates: Vec<&'static str>,
    /// `twin-coverage`: substrings a `tests/*.rs` filename must contain
    /// for the file to count as gating coverage.
    pub twin_test_markers: Vec<&'static str>,
    /// `unsafe-audit`: how many lines above an `unsafe` token a
    /// `SAFETY` comment may sit (doc `# Safety` sections included).
    pub safety_window: u32,
}

impl Config {
    /// An empty configuration (no allowances, no crates in scope) —
    /// the fixture-test baseline.
    pub fn empty() -> Self {
        Config {
            powf_allow: Vec::new(),
            wall_clock_allow: Vec::new(),
            unsafe_allow: Vec::new(),
            nondet_crates: Vec::new(),
            twin_crates: Vec::new(),
            twin_test_markers: vec!["properties", "engines"],
            safety_window: 12,
        }
    }

    /// The workspace contract. Every allowance here is deliberate:
    ///
    /// * `raw-powf` — `core::fastmath` is the sanctioned transcendental
    ///   home; `core::costmodel` defines the cost laws the contract
    ///   protects; `core::analysis` and `samplesort::stats` are the
    ///   paper's closed-form formulas (one evaluation per experiment
    ///   row, bit-pinned by committed CSVs); `platform::distribution`
    ///   is inverse-transform RNG sampling, equally bit-pinned.
    /// * `wall-clock-in-kernel` — `experiments::runner` and
    ///   `experiments::service` own the documented `decisions_per_sec`
    ///   measurement sites (the one CSV column exempt from
    ///   byte-identity).
    /// * `unsafe-audit` — `core::fastmath` (runtime-detected AVX2
    ///   kernels) and `linalg::gemm` (historically sanctioned for
    ///   blocked kernels) are the only modules allowed to contain
    ///   `unsafe`.
    pub fn workspace_default() -> Self {
        Config {
            powf_allow: vec![
                Allow {
                    module: "core::fastmath",
                    reason: "the sanctioned transcendental kernels themselves",
                },
                Allow {
                    module: "core::costmodel",
                    reason: "cost-law definitions: the std powf here IS the contract the \
                             fast paths are gated against",
                },
                Allow {
                    module: "core::analysis",
                    reason: "closed-form Section 2 formulas, one evaluation per experiment \
                             row, bit-pinned by committed CSVs",
                },
                Allow {
                    module: "samplesort::stats",
                    reason: "the paper's s = log^2 N oversampling formula (closed form, \
                             not a solver hot path)",
                },
                Allow {
                    module: "platform::distribution",
                    reason: "inverse-transform RNG sampling; committed CSVs pin these bits",
                },
            ],
            wall_clock_allow: vec![
                Allow {
                    module: "experiments::runner",
                    reason: "documented decisions_per_sec measurement site",
                },
                Allow {
                    module: "experiments::service",
                    reason: "documented decisions_per_sec measurement site (the one CSV \
                             column exempt from byte-identity)",
                },
            ],
            unsafe_allow: vec![
                Allow {
                    module: "core::fastmath",
                    reason: "runtime-detected AVX2 mirror of the scalar kernels",
                },
                Allow {
                    module: "linalg::gemm",
                    reason: "sanctioned home for blocked/SIMD matrix kernels",
                },
            ],
            nondet_crates: vec![
                "core",
                "sim",
                "multiload",
                "partition",
                "outer",
                "samplesort",
                "linalg",
                "platform",
                "stats",
                "mapreduce",
            ],
            twin_crates: vec!["multiload"],
            twin_test_markers: vec!["properties", "engines"],
            safety_window: 12,
        }
    }

    /// Adds a `raw-powf` allowlist entry (builder, for tests).
    pub fn allow_powf(mut self, module: &'static str) -> Self {
        self.powf_allow.push(Allow { module, reason: "" });
        self
    }

    /// Adds a `wall-clock-in-kernel` allowlist entry (builder, for tests).
    pub fn allow_wall_clock(mut self, module: &'static str) -> Self {
        self.wall_clock_allow.push(Allow { module, reason: "" });
        self
    }

    /// Adds an `unsafe-audit` sanctioned module (builder, for tests).
    pub fn allow_unsafe(mut self, module: &'static str) -> Self {
        self.unsafe_allow.push(Allow { module, reason: "" });
        self
    }

    /// Adds a crate to the `nondeterministic-iteration` scope (builder).
    pub fn nondet_crate(mut self, krate: &'static str) -> Self {
        self.nondet_crates.push(krate);
        self
    }

    /// Adds a crate to the `twin-coverage` scope (builder).
    pub fn twin_crate(mut self, krate: &'static str) -> Self {
        self.twin_crates.push(krate);
        self
    }
}

/// True when `module` is `prefix` itself or a submodule of it.
pub fn module_matches(module: &str, prefix: &str) -> bool {
    module == prefix
        || module
            .strip_prefix(prefix)
            .is_some_and(|rest| rest.starts_with("::"))
}

/// True when any allowlist entry covers `module`. A module whose last
/// segment ends in `_reference` is additionally covered for `raw-powf`
/// by convention (oracle modules reproduce pre-optimization arithmetic
/// verbatim) — callers opt into that via [`allows_reference_modules`].
pub fn allowed(allow: &[Allow], module: &str) -> bool {
    allow.iter().any(|a| module_matches(module, a.module))
}

/// The `raw-powf` oracle-module convention: a module named
/// `*_reference` exists to reproduce pre-optimization arithmetic
/// verbatim, so raw transcendentals are its job.
pub fn allows_reference_modules(module: &str) -> bool {
    module
        .rsplit("::")
        .next()
        .is_some_and(|last| last.ends_with("_reference"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_matching_is_segment_aware() {
        assert!(module_matches("core::fastmath", "core::fastmath"));
        assert!(module_matches("core::fastmath::avx2", "core::fastmath"));
        assert!(!module_matches("core::fastmath2", "core::fastmath"));
        assert!(!module_matches("core", "core::fastmath"));
    }

    #[test]
    fn reference_module_convention() {
        assert!(allows_reference_modules("sim::demand_reference"));
        assert!(!allows_reference_modules("sim::demand"));
    }
}
