//! Identifier-set builders shared by the rule engine and `docs-check`.
//!
//! Two fidelities, deliberately distinct:
//!
//! * [`collect_identifiers`] / [`identifier_set`] — the **full** set:
//!   every `[A-Za-z_][A-Za-z0-9_]*` token in the raw text, comments and
//!   string literals included. This is `docs-check`'s resolution set
//!   (moved here from its former private copy): a doc span must resolve
//!   against anything the sources *mention*, which keeps renames honest
//!   without requiring docs to only cite declared items.
//! * [`code_identifier_set`] — the **code** set: identifiers appearing
//!   as actual code tokens (comments and strings excluded), optionally
//!   restricted to non-test regions. This is what `twin-coverage`
//!   resolves `_reference` twins against — a twin mentioned only in a
//!   comment must not satisfy the contract.

use crate::lexer::TokKind;
use crate::scan::FileScan;
use std::collections::BTreeSet;
use std::path::PathBuf;

/// Splits `text` into identifier tokens and inserts them into `out`
/// (identifiers starting with a digit are discarded).
pub fn collect_identifiers(text: &str, out: &mut BTreeSet<String>) {
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            current.push(ch);
        } else if !current.is_empty() {
            if !current.starts_with(|c: char| c.is_ascii_digit()) {
                out.insert(std::mem::take(&mut current));
            } else {
                current.clear();
            }
        }
    }
    if !current.is_empty() && !current.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(current);
    }
}

/// Collects the full identifier set of every `.rs` file under `roots`
/// (recursive; comments and strings included — see module docs).
pub fn identifier_set(roots: &[PathBuf]) -> std::io::Result<BTreeSet<String>> {
    let mut idents = BTreeSet::new();
    let mut stack: Vec<PathBuf> = roots.to_vec();
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                collect_identifiers(&std::fs::read_to_string(&path)?, &mut idents);
            }
        }
    }
    Ok(idents)
}

/// Inserts the identifiers of `file`'s code tokens into `out`. With
/// `include_tests = false`, identifiers inside `#[cfg(test)]`/`mod
/// tests` regions are skipped.
pub fn code_identifier_set(file: &FileScan, include_tests: bool, out: &mut BTreeSet<String>) {
    for (i, t) in file.toks.iter().enumerate() {
        if t.kind == TokKind::Ident && (include_tests || !file.in_test[i]) {
            out.insert(t.text.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Gate carried over from docs-check's private implementation: the
    // tokenizer behavior its CI contract depends on.
    #[test]
    fn identifier_collection_tokenizes() {
        let mut set = BTreeSet::new();
        collect_identifiers("pub fn foo_bar(x: u32) -> Baz2 { qux() }", &mut set);
        assert!(set.contains("foo_bar") && set.contains("Baz2") && set.contains("qux"));
        assert!(!set.contains("32"));
    }

    #[test]
    fn full_set_includes_comments_and_strings() {
        let mut set = BTreeSet::new();
        collect_identifiers(
            "// mention_in_comment\nlet s = \"mention_in_string\";",
            &mut set,
        );
        assert!(set.contains("mention_in_comment"));
        assert!(set.contains("mention_in_string"));
    }

    #[test]
    fn code_set_excludes_comments_strings_and_tests() {
        let file = FileScan::new(
            "crates/x/src/lib.rs",
            "// only_in_comment\nfn live() { let s = \"only_in_string\"; }\n\
             #[cfg(test)]\nmod tests { fn only_in_test() {} }",
        );
        let mut set = BTreeSet::new();
        code_identifier_set(&file, false, &mut set);
        assert!(set.contains("live"));
        assert!(!set.contains("only_in_comment"));
        assert!(!set.contains("only_in_string"));
        assert!(!set.contains("only_in_test"));
        let mut with_tests = BTreeSet::new();
        code_identifier_set(&file, true, &mut with_tests);
        assert!(with_tests.contains("only_in_test"));
    }
}
