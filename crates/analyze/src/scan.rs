//! Per-file scan state: tokens plus the region classification rules
//! need — *is this token inside test-only code?* and *is this token
//! inside an `impl`/`trait` block?*
//!
//! Test regions are what keep the linter honest about its own scope:
//! the determinism contracts bind **shipped** code, while tests are
//! free to call `f64::powf` to build oracles (and do — e.g. the
//! `chunk_tasks` helper in `round_robin`'s test module). A region is
//! test-only when it is the brace block of an item annotated
//! `#[cfg(test)]` or of a `mod tests` item; nesting is tracked with a
//! brace-tag stack, so items inside a test module are test tokens at
//! any depth.
//!
//! Impl tracking exists for the `twin-coverage` rule: the fast-engine
//! naming contract applies to *free* `pub fn`s, not to methods (e.g.
//! `SolverOutcome::to_schedule` contains `_schedule` but is a metrics
//! conversion method, not an engine).

use crate::lexer::{lex, Tok, TokKind};

/// A lexed file plus region flags, the unit every rule consumes.
#[derive(Debug)]
pub struct FileScan {
    /// Workspace-relative path with `/` separators (also the diagnostic
    /// anchor).
    pub path: String,
    /// Module path derived from the file path, e.g. `core::fastmath`
    /// (see [`module_path_of`]).
    pub module: String,
    /// Token stream (comments included).
    pub toks: Vec<Tok>,
    /// Parallel to `toks`: token is inside a `#[cfg(test)]` item or a
    /// `mod tests` block.
    pub in_test: Vec<bool>,
    /// Parallel to `toks`: token is inside an `impl` or `trait` block.
    pub in_impl: Vec<bool>,
}

/// What a brace on the stack was opened by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tag {
    Normal,
    Test,
    Impl,
}

impl FileScan {
    /// Lexes `src` and computes region flags.
    pub fn new(path: &str, src: &str) -> Self {
        let toks = lex(src);
        let n = toks.len();
        let mut in_test = vec![false; n];
        let mut in_impl = vec![false; n];
        let mut stack: Vec<Tag> = Vec::new();
        let mut pending_test = false;
        let mut pending_impl = false;
        let mut pending_mod_name: Option<String> = None;

        let record = |stack: &[Tag], in_test: &mut [bool], in_impl: &mut [bool], i: usize| {
            in_test[i] = stack.contains(&Tag::Test);
            in_impl[i] = stack.contains(&Tag::Impl);
        };

        let mut i = 0usize;
        while i < n {
            let t = &toks[i];
            if t.is_comment() {
                record(&stack, &mut in_test, &mut in_impl, i);
                i += 1;
                continue;
            }
            match t.kind {
                // Attribute: consume `#[…]` / `#![…]` wholesale so its
                // brackets never touch the brace stack, and detect the
                // exact `cfg ( test )` sequence inside it.
                TokKind::Punct('#') => {
                    record(&stack, &mut in_test, &mut in_impl, i);
                    let mut j = i + 1;
                    // Skip comments and the optional inner-attribute `!`.
                    while j < n && (toks[j].is_comment() || toks[j].is_punct('!')) {
                        record(&stack, &mut in_test, &mut in_impl, j);
                        j += 1;
                    }
                    if j < n && toks[j].is_punct('[') {
                        let mut depth = 0usize;
                        let mut attr: Vec<usize> = Vec::new();
                        while j < n {
                            record(&stack, &mut in_test, &mut in_impl, j);
                            if toks[j].is_punct('[') {
                                depth += 1;
                            } else if toks[j].is_punct(']') {
                                depth -= 1;
                                if depth == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            attr.push(j);
                            j += 1;
                        }
                        if has_cfg_test(&toks, &attr) {
                            pending_test = true;
                        }
                        i = j;
                    } else {
                        i += 1;
                    }
                }
                TokKind::Ident if t.text == "impl" || t.text == "trait" => {
                    record(&stack, &mut in_test, &mut in_impl, i);
                    pending_impl = true;
                    i += 1;
                }
                TokKind::Ident if t.text == "mod" => {
                    record(&stack, &mut in_test, &mut in_impl, i);
                    // Remember the module name awaiting its brace.
                    let mut j = i + 1;
                    while j < n && toks[j].is_comment() {
                        j += 1;
                    }
                    if j < n && toks[j].kind == TokKind::Ident {
                        pending_mod_name = Some(toks[j].text.clone());
                    }
                    i += 1;
                }
                TokKind::Punct('{') => {
                    let tag = if pending_test || pending_mod_name.as_deref() == Some("tests") {
                        Tag::Test
                    } else if pending_impl {
                        Tag::Impl
                    } else {
                        Tag::Normal
                    };
                    pending_test = false;
                    pending_impl = false;
                    pending_mod_name = None;
                    stack.push(tag);
                    record(&stack, &mut in_test, &mut in_impl, i);
                    i += 1;
                }
                TokKind::Punct('}') => {
                    record(&stack, &mut in_test, &mut in_impl, i);
                    stack.pop();
                    i += 1;
                }
                TokKind::Punct(';') => {
                    record(&stack, &mut in_test, &mut in_impl, i);
                    // An item ended without a brace (`mod x;`, a gated
                    // `use`): the pending markers belonged to it.
                    pending_test = false;
                    pending_impl = false;
                    pending_mod_name = None;
                    i += 1;
                }
                _ => {
                    record(&stack, &mut in_test, &mut in_impl, i);
                    i += 1;
                }
            }
        }

        FileScan {
            path: path.to_string(),
            module: module_path_of(path),
            toks,
            in_test,
            in_impl,
        }
    }

    /// Index of the previous non-comment token before `i`.
    pub fn prev_code(&self, i: usize) -> Option<usize> {
        (0..i).rev().find(|&j| !self.toks[j].is_comment())
    }

    /// Index of the next non-comment token after `i`.
    pub fn next_code(&self, i: usize) -> Option<usize> {
        (i + 1..self.toks.len()).find(|&j| !self.toks[j].is_comment())
    }
}

/// True when the attribute token indices contain the exact sequence
/// `cfg ( test )` — deliberately *not* matching `cfg(not(test))` or
/// `cfg_attr(test, …)`, whose bodies are live in shipped builds.
fn has_cfg_test(toks: &[Tok], attr: &[usize]) -> bool {
    for (k, &ti) in attr.iter().enumerate() {
        if toks[ti].is_ident("cfg")
            && attr.len() > k + 3
            && toks[attr[k + 1]].is_punct('(')
            && toks[attr[k + 2]].is_ident("test")
            && toks[attr[k + 3]].is_punct(')')
        {
            return true;
        }
    }
    false
}

/// Derives the diagnostic module path from a workspace-relative file
/// path: `crates/core/src/fastmath.rs` → `core::fastmath`,
/// `crates/experiments/src/bin/all.rs` → `experiments::bin::all`,
/// `crates/mapreduce/src/jobs/mod.rs` → `mapreduce::jobs`,
/// `src/lib.rs` (the root facade) → `nonlinear_dlt`.
pub fn module_path_of(path: &str) -> String {
    let norm = path.replace('\\', "/");
    let mut parts: Vec<&str> = norm.split('/').filter(|s| !s.is_empty()).collect();
    if let Some(last) = parts.last_mut() {
        *last = last.strip_suffix(".rs").unwrap_or(last);
    }
    // Locate the `src` marker: the crate name precedes it (or the root
    // facade owns it).
    let src_pos = parts.iter().position(|&p| p == "src");
    let (crate_name, rest): (&str, &[&str]) = match src_pos {
        Some(0) => ("nonlinear_dlt", &parts[1..]),
        Some(k) => (parts[k - 1], &parts[k + 1..]),
        None => {
            return parts.join("::");
        }
    };
    let mut segs: Vec<&str> = vec![crate_name];
    for (idx, &s) in rest.iter().enumerate() {
        let is_last = idx == rest.len() - 1;
        if is_last && (s == "lib" || s == "main" || s == "mod") {
            continue;
        }
        segs.push(s);
    }
    segs.join("::")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_flags(src: &str) -> Vec<(String, bool)> {
        let f = FileScan::new("crates/x/src/lib.rs", src);
        f.toks
            .iter()
            .zip(&f.in_test)
            .filter(|(t, _)| t.kind == TokKind::Ident)
            .map(|(t, &flag)| (t.text.clone(), flag))
            .collect()
    }

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn helper() {}\n}\nfn live2() {}";
        let flags = test_flags(src);
        assert!(flags.contains(&("live".into(), false)));
        assert!(flags.contains(&("helper".into(), true)));
        assert!(flags.contains(&("live2".into(), false)));
    }

    #[test]
    fn bare_mod_tests_is_a_test_region() {
        let flags = test_flags("mod tests { fn helper() {} } fn live() {}");
        assert!(flags.contains(&("helper".into(), true)));
        assert!(flags.contains(&("live".into(), false)));
    }

    #[test]
    fn cfg_test_fn_is_a_test_region() {
        let flags = test_flags("#[cfg(test)]\nfn gated() { body(); }\nfn live() {}");
        assert!(flags.contains(&("body".into(), true)));
        assert!(flags.contains(&("live".into(), false)));
    }

    #[test]
    fn cfg_not_test_stays_live() {
        let flags = test_flags("#[cfg(not(test))]\nfn shipped() { body(); }");
        assert!(flags.contains(&("body".into(), false)));
    }

    #[test]
    fn cfg_test_use_does_not_leak_onto_the_next_item() {
        let flags = test_flags("#[cfg(test)]\nuse std::fmt::Debug;\nfn live() { body(); }");
        assert!(flags.contains(&("body".into(), false)));
    }

    #[test]
    fn non_tests_mod_is_live() {
        let flags = test_flags("mod inner { fn live() {} }");
        assert!(flags.contains(&("live".into(), false)));
    }

    #[test]
    fn impl_blocks_are_tracked() {
        let f = FileScan::new(
            "crates/x/src/lib.rs",
            "impl Foo { pub fn to_schedule(&self) {} }\npub fn free_fn() {}",
        );
        let method = f
            .toks
            .iter()
            .position(|t| t.is_ident("to_schedule"))
            .unwrap();
        let free = f.toks.iter().position(|t| t.is_ident("free_fn")).unwrap();
        assert!(f.in_impl[method]);
        assert!(!f.in_impl[free]);
    }

    #[test]
    fn attribute_brackets_do_not_unbalance_braces() {
        // `#[derive(Debug)]` then a struct with braces: the flags after
        // the item must be back to live top level.
        let flags = test_flags("#[derive(Debug)]\nstruct S { x: u32 }\nfn live() {}");
        assert!(flags.contains(&("live".into(), false)));
    }

    #[test]
    fn module_paths() {
        assert_eq!(
            module_path_of("crates/core/src/fastmath.rs"),
            "core::fastmath"
        );
        assert_eq!(module_path_of("crates/core/src/lib.rs"), "core");
        assert_eq!(
            module_path_of("crates/experiments/src/bin/all.rs"),
            "experiments::bin::all"
        );
        assert_eq!(
            module_path_of("crates/mapreduce/src/jobs/mod.rs"),
            "mapreduce::jobs"
        );
        assert_eq!(module_path_of("src/lib.rs"), "nonlinear_dlt");
        assert_eq!(module_path_of("tests/end_to_end.rs"), "tests::end_to_end");
    }
}
