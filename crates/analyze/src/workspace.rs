//! The analysis driver: source classification, context building, rule
//! execution and pragma application.
//!
//! Two entry points, one engine:
//!
//! * [`analyze_sources`] — pure, in-memory: takes `(path, source)`
//!   pairs and a [`Config`], returns sorted findings. This is what the
//!   fixture tests drive — no filesystem, fully deterministic.
//! * [`analyze_workspace`] — walks a repository root (`crates/` and
//!   `src/`), reads every `.rs` file and delegates to
//!   [`analyze_sources`]. This is what the CLI and the live self-check
//!   test run.
//!
//! Classification is path-based: a file with a `tests` path component
//! is a **test source** — never linted (tests are free to build raw
//! oracles), but harvested into the twin-coverage `test_idents` set
//! when its filename contains one of the configured markers
//! (`properties`, `engines`). Everything else is a **lint source**.
//! Directories named `target`, `vendor`, `benches` or `examples` are
//! skipped entirely: build output, vendored third-party code and
//! benchmark drivers are outside the determinism contracts.

use crate::config::Config;
use crate::idents::code_identifier_set;
use crate::pragma::Pragmas;
use crate::rules::{registry, rule_names, Context, Finding};
use crate::scan::FileScan;
use std::path::{Path, PathBuf};

/// Directory names the walker never descends into.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", "benches", "examples"];

/// True when `path` (workspace-relative, `/`-separated) has a `tests`
/// component — integration-test trees like `crates/multiload/tests/`.
fn is_test_path(path: &str) -> bool {
    path.split('/').any(|c| c == "tests")
}

/// True when the test file at `path` counts as gating coverage: its
/// file stem contains one of the configured markers.
fn is_gating_test_path(path: &str, cfg: &Config) -> bool {
    let stem = path
        .rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".rs");
    cfg.twin_test_markers.iter().any(|m| stem.contains(m))
}

/// Runs the full rule set over in-memory sources. `sources` is
/// `(workspace-relative path, file contents)`; classification and
/// pragma handling follow the module docs. Findings come back sorted
/// by `(file, line, rule)`.
pub fn analyze_sources(sources: &[(String, String)], cfg: &Config) -> Vec<Finding> {
    let mut scans: Vec<FileScan> = Vec::new();
    let mut ctx = Context::default();
    for (path, src) in sources {
        if is_test_path(path) {
            if is_gating_test_path(path, cfg) {
                crate::idents::collect_identifiers(src, &mut ctx.test_idents);
            }
            continue;
        }
        let scan = FileScan::new(path, src);
        code_identifier_set(&scan, false, &mut ctx.code_idents);
        scans.push(scan);
    }

    let rules = registry();
    let known = rule_names();
    let mut findings: Vec<Finding> = Vec::new();
    for scan in &scans {
        let mut raw: Vec<Finding> = Vec::new();
        for rule in &rules {
            rule.check(scan, &ctx, cfg, &mut raw);
        }
        let pragmas = Pragmas::parse(scan);
        raw.retain(|f| !pragmas.allows(f.rule, f.line));
        findings.extend(raw);
        for (line, rule) in pragmas.unknown_rules(&known) {
            findings.push(Finding {
                file: scan.path.clone(),
                line,
                rule: "pragma",
                message: format!(
                    "pragma names unknown rule `{rule}` — it suppresses nothing; \
                     known rules: {}",
                    known.join(", ")
                ),
            });
        }
    }
    findings.sort();
    // Two identical calls on one line (e.g. `a.ln() / b.ln()`) produce
    // identical findings; one diagnostic per site is enough.
    findings.dedup();
    findings
}

/// Collects every `.rs` file under `root`'s lint roots (`crates/` and
/// `src/`), returning `(workspace-relative path, contents)` pairs.
/// Ordering is sorted, so the whole pipeline is reproducible.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut stack: Vec<PathBuf> = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            stack.push(dir);
        }
    }
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.is_dir() {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if !SKIP_DIRS.contains(&name) {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        sources.push((rel, std::fs::read_to_string(&path)?));
    }
    Ok(sources)
}

/// Walks `root` and runs [`analyze_sources`] under `cfg`.
pub fn analyze_workspace(root: &Path, cfg: &Config) -> std::io::Result<Vec<Finding>> {
    Ok(analyze_sources(&workspace_sources(root)?, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect()
    }

    #[test]
    fn test_paths_are_classified_not_linted() {
        // A raw powf inside a tests/ file must not produce a finding.
        let findings = analyze_sources(
            &src(&[(
                "crates/x/tests/oracle_properties.rs",
                "fn oracle(x: f64, a: f64) -> f64 { x.powf(a) }",
            )]),
            &Config::empty(),
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn gating_markers_gate_test_harvest() {
        assert!(is_gating_test_path(
            "crates/multiload/tests/batch_engines.rs",
            &Config::empty()
        ));
        assert!(is_gating_test_path(
            "crates/core/tests/batch_properties.rs",
            &Config::empty()
        ));
        assert!(!is_gating_test_path(
            "crates/multiload/tests/smoke.rs",
            &Config::empty()
        ));
    }

    #[test]
    fn unknown_pragma_rules_become_findings() {
        let findings = analyze_sources(
            &src(&[(
                "crates/x/src/lib.rs",
                "// dlt-analyze: allow(not-a-rule) — typo\nfn f() {}\n",
            )]),
            &Config::empty(),
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "pragma");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn pragmas_suppress_matching_findings() {
        let body = "pub fn f(x: f64, a: f64) -> f64 {\n    \
                    x.powf(a) // dlt-analyze: allow(raw-powf) — test fixture\n}\n";
        let clean = analyze_sources(&src(&[("crates/x/src/lib.rs", body)]), &Config::empty());
        assert!(clean.is_empty(), "{clean:?}");
        let hot = analyze_sources(
            &src(&[(
                "crates/x/src/lib.rs",
                "pub fn f(x: f64, a: f64) -> f64 { x.powf(a) }\n",
            )]),
            &Config::empty(),
        );
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].rule, "raw-powf");
    }

    #[test]
    fn findings_come_back_sorted() {
        let findings = analyze_sources(
            &src(&[
                (
                    "crates/z/src/lib.rs",
                    "pub fn g(x: f64) -> f64 { x.exp() }\n",
                ),
                (
                    "crates/a/src/lib.rs",
                    "pub fn f(x: f64) -> f64 { x.ln() }\n",
                ),
            ]),
            &Config::empty(),
        );
        assert_eq!(findings.len(), 2);
        assert!(findings[0].file < findings[1].file);
    }
}
