//! Diagnostic rendering: one `file:line: [rule] message` line per
//! finding plus a per-rule summary, in a stable order so CI output
//! diffs cleanly between runs.

use crate::rules::Finding;
use std::collections::BTreeMap;

/// Renders sorted findings followed by a summary line. Empty input
/// renders the all-clear line alone.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    out.push_str(&summary(findings));
    out.push('\n');
    out
}

/// The summary line: `dlt-analyze: N finding(s) (rule: n, ...)` or the
/// all-clear.
pub fn summary(findings: &[Finding]) -> String {
    if findings.is_empty() {
        return "dlt-analyze: clean (0 findings)".to_string();
    }
    let mut per_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for f in findings {
        *per_rule.entry(f.rule).or_default() += 1;
    }
    let detail = per_rule
        .iter()
        .map(|(rule, n)| format!("{rule}: {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!("dlt-analyze: {} finding(s) ({detail})", findings.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, rule: &'static str) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule,
            message: "msg".to_string(),
        }
    }

    #[test]
    fn clean_report() {
        assert_eq!(render(&[]), "dlt-analyze: clean (0 findings)\n");
    }

    #[test]
    fn summary_counts_per_rule() {
        let fs = vec![
            finding("a.rs", 1, "raw-powf"),
            finding("a.rs", 9, "raw-powf"),
            finding("b.rs", 3, "unsafe-audit"),
        ];
        assert_eq!(
            summary(&fs),
            "dlt-analyze: 3 finding(s) (raw-powf: 2, unsafe-audit: 1)"
        );
        let text = render(&fs);
        assert!(text.starts_with("a.rs:1: [raw-powf] msg\n"));
        assert!(text.ends_with("(raw-powf: 2, unsafe-audit: 1)\n"));
    }
}
