//! CLI for the workspace determinism linter.
//!
//! ```text
//! dlt-analyze --workspace [--root <dir>]   lint the workspace (CI entry point)
//! dlt-analyze <file.rs>...                 lint specific files
//! dlt-analyze --list-rules                 print rules and allowlists
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

#![forbid(unsafe_code)]

use dlt_analyze::config::Config;
use dlt_analyze::report;
use dlt_analyze::rules::registry;
use dlt_analyze::workspace::{analyze_sources, analyze_workspace};
use std::path::PathBuf;

const USAGE: &str = "usage: dlt-analyze --workspace [--root <dir>] | dlt-analyze <file.rs>... | dlt-analyze --list-rules";

fn list_rules(cfg: &Config) {
    println!("dlt-analyze rules:");
    for rule in registry() {
        println!("  {:<28} {}", rule.name(), rule.describe());
    }
    println!("\nallowlists (module prefix — reason):");
    for (rule, allows) in [
        ("raw-powf", &cfg.powf_allow),
        ("wall-clock-in-kernel", &cfg.wall_clock_allow),
        ("unsafe-audit", &cfg.unsafe_allow),
    ] {
        for a in allows {
            println!("  [{rule}] {} — {}", a.module, a.reason);
        }
    }
    println!(
        "\nsuppression: `// dlt-analyze: allow(<rule>)` on the finding's line or the line above"
    );
}

fn run(args: &[String]) -> i32 {
    let cfg = Config::workspace_default();
    let mut root = PathBuf::from(".");
    let mut workspace = false;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("{USAGE}");
                    return 2;
                }
            },
            "--list-rules" => {
                list_rules(&cfg);
                return 0;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag `{flag}`\n{USAGE}");
                return 2;
            }
            file => files.push(file.to_string()),
        }
    }

    let findings = if workspace {
        match analyze_workspace(&root, &cfg) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("dlt-analyze: error walking {}: {e}", root.display());
                return 2;
            }
        }
    } else if files.is_empty() {
        eprintln!("{USAGE}");
        return 2;
    } else {
        let mut sources = Vec::with_capacity(files.len());
        for f in &files {
            match std::fs::read_to_string(f) {
                Ok(src) => sources.push((f.clone(), src)),
                Err(e) => {
                    eprintln!("dlt-analyze: cannot read {f}: {e}");
                    return 2;
                }
            }
        }
        analyze_sources(&sources, &cfg)
    };

    print!("{}", report::render(&findings));
    i32::from(!findings.is_empty())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(run(&args));
}
