//! Hand-rolled token-level Rust lexer.
//!
//! `dlt-analyze` runs in a fully offline build, so it cannot lean on
//! `syn` or `proc-macro2`; instead this module splits Rust source into
//! just enough structure for the rule engine to be *sound about text*:
//! an identifier inside a string literal or a comment must never look
//! like a call, and a pragma inside a comment must be findable. The
//! lexer therefore distinguishes exactly seven token classes —
//! identifiers, punctuation, numbers, lifetimes, string/char literals,
//! line comments and block comments — and records the 1-based line each
//! token starts on.
//!
//! What it deliberately does **not** do: expression parsing, macro
//! expansion, type resolution. Every rule downstream is written against
//! token *sequences* (e.g. `.` `powf` `(`), which is the same altitude
//! `docs-check` operates at and is robust against formatting.
//!
//! Handled literal syntax: `//`/`///`/`//!` line comments, nested
//! `/* */` block comments, `"…"` strings with escapes, raw strings
//! `r"…"`/`r#"…"#` (any hash depth), byte strings `b"…"`/`br#"…"#`,
//! char and byte-char literals (including escapes), lifetimes
//! (`'a`, `'static`) and raw identifiers (`r#type`).

/// One lexed token: classification, source text and starting line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text. For comments this is the full comment (markers
    /// included); for string literals it is the *contents* (delimiters
    /// stripped), so identifier harvesting can tokenize it directly.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// Token classification. See [`Tok`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `HashMap`, …).
    Ident,
    /// Single punctuation character.
    Punct(char),
    /// Numeric literal (loosely consumed; never inspected downstream).
    Num,
    /// String, byte-string, char or byte-char literal.
    Str,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// `// …` comment (doc comments included).
    LineComment,
    /// `/* … */` comment (possibly spanning lines; nested pairs ok).
    BlockComment,
}

impl Tok {
    /// True for both comment kinds.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// True when the token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// True when the token is the punctuation `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct(ch)
    }
}

/// Splits `src` into tokens. Total: any input produces a token stream
/// (unterminated literals run to end of file rather than erroring —
/// a linter must not panic on the code it inspects).
pub fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && b.get(i + 1) == Some(&'/') {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::LineComment,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Block comment (nested pairs tracked).
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let start_line = line;
            let start = i;
            i += 2;
            let mut depth = 1usize;
            while i < n && depth > 0 {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            toks.push(Tok {
                kind: TokKind::BlockComment,
                text: b[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Raw strings r"…" / r#"…"# and their b-prefixed forms, plus
        // raw identifiers r#ident. Checked before plain identifiers so
        // the `r`/`b` prefixes don't lex as identifier starts.
        if c == 'r' || c == 'b' {
            let mut j = i;
            if b[j] == 'b' {
                j += 1;
            }
            let has_r = b.get(j) == Some(&'r');
            if has_r {
                j += 1;
            }
            let mut hashes = 0usize;
            while b.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if has_r && b.get(j) == Some(&'"') {
                // Raw (byte) string: runs to `"` followed by `hashes` #s.
                let start_line = line;
                j += 1;
                let content_start = j;
                'scan: while j < n {
                    if b[j] == '"' {
                        let mut k = 0usize;
                        while k < hashes && b.get(j + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            break 'scan;
                        }
                    }
                    if b[j] == '\n' {
                        line += 1;
                    }
                    j += 1;
                }
                let content: String = b[content_start..j.min(n)].iter().collect();
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: content,
                    line: start_line,
                });
                i = (j + 1 + hashes).min(n);
                continue;
            }
            if has_r && hashes == 1 && b.get(j).is_some_and(|&ch| is_ident_start(ch)) {
                // Raw identifier r#type: the identifier is the payload.
                let start = j;
                while j < n && is_ident_continue(b[j]) {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: b[start..j].iter().collect(),
                    line,
                });
                i = j;
                continue;
            }
            if c == 'b' && b.get(i + 1) == Some(&'"') {
                // Byte string: same escape rules as a plain string.
                let (tok, next, nl) = lex_quoted(&b, i + 1, line);
                toks.push(tok);
                i = next;
                line += nl;
                continue;
            }
            if c == 'b' && b.get(i + 1) == Some(&'\'') {
                let (tok, next) = lex_char(&b, i + 1, line);
                toks.push(tok);
                i = next;
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }
        if c == '"' {
            let (tok, next, nl) = lex_quoted(&b, i, line);
            toks.push(tok);
            i = next;
            line += nl;
            continue;
        }
        if c == '\'' {
            // Lifetime when followed by an identifier that is *not*
            // immediately closed by another quote (`'a` vs `'a'`).
            let is_lifetime =
                b.get(i + 1).is_some_and(|&ch| is_ident_start(ch)) && b.get(i + 2) != Some(&'\'');
            if is_lifetime {
                let start = i + 1;
                let mut j = start;
                while j < n && is_ident_continue(b[j]) {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: b[start..j].iter().collect(),
                    line,
                });
                i = j;
                continue;
            }
            let (tok, next) = lex_char(&b, i, line);
            toks.push(tok);
            i = next;
            continue;
        }
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(b[i]) {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            // Loose numeric literal: digits, alphanumerics (hex, type
            // suffixes), `_`, a `.` only when followed by a digit (so
            // `0..n` stays a range), and a sign right after e/E.
            let start = i;
            i += 1;
            while i < n {
                let d = b[i];
                let digit_follows = || b.get(i + 1).is_some_and(|ch| ch.is_ascii_digit());
                let continues = d.is_ascii_alphanumeric()
                    || d == '_'
                    || (d == '.' && digit_follows())
                    || ((d == '+' || d == '-') && matches!(b[i - 1], 'e' | 'E') && digit_follows());
                if !continues {
                    break;
                }
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        toks.push(Tok {
            kind: TokKind::Punct(c),
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    toks
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Lexes a `"…"` string starting at the opening quote. Returns the
/// token, the index past the closing quote and the newline count.
fn lex_quoted(b: &[char], open: usize, line: u32) -> (Tok, usize, u32) {
    let n = b.len();
    let mut j = open + 1;
    let mut newlines = 0u32;
    let start = j;
    while j < n && b[j] != '"' {
        if b[j] == '\\' {
            j += 2;
            continue;
        }
        if b[j] == '\n' {
            newlines += 1;
        }
        j += 1;
    }
    let content: String = b[start..j.min(n)].iter().collect();
    (
        Tok {
            kind: TokKind::Str,
            text: content,
            line,
        },
        (j + 1).min(n),
        newlines,
    )
}

/// Lexes a `'x'` char literal starting at the opening quote (escapes,
/// including `\u{…}`, are skipped wholesale). Returns the token and the
/// index past the closing quote.
fn lex_char(b: &[char], open: usize, line: u32) -> (Tok, usize) {
    let n = b.len();
    let mut j = open + 1;
    let start = j;
    while j < n && b[j] != '\'' {
        if b[j] == '\\' {
            j += 2;
            continue;
        }
        j += 1;
    }
    let content: String = b[start..j.min(n)].iter().collect();
    (
        Tok {
            kind: TokKind::Str,
            text: content,
            line,
        },
        (j + 1).min(n),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        let t = kinds("fn foo(x: u32) -> f64 { x as f64 * 1.5e-3 }");
        assert!(t.contains(&(TokKind::Ident, "foo".into())));
        assert!(t.contains(&(TokKind::Punct('{'), "{".into())));
        assert!(t.contains(&(TokKind::Num, "1.5e-3".into())));
    }

    #[test]
    fn range_does_not_eat_dots() {
        let t = kinds("0..chunks");
        assert_eq!(t[0], (TokKind::Num, "0".into()));
        assert_eq!(t[1], (TokKind::Punct('.'), ".".into()));
        assert_eq!(t[2], (TokKind::Punct('.'), ".".into()));
        assert_eq!(t[3], (TokKind::Ident, "chunks".into()));
    }

    #[test]
    fn comments_are_single_tokens() {
        let t = lex("a // x.powf(2.0)\nb /* y.powf(3.0)\nstill */ c");
        let idents: Vec<&str> = t
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["a", "b", "c"]);
        assert_eq!(t[1].kind, TokKind::LineComment);
        assert_eq!(t[3].kind, TokKind::BlockComment);
        // Lines: `b` on 2, `c` on 3 (block comment spans a newline).
        assert_eq!(t[2].line, 2);
        assert_eq!(t[4].line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let t = lex("/* outer /* inner */ still outer */ x");
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].kind, TokKind::BlockComment);
        assert!(t[1].is_ident("x"));
    }

    #[test]
    fn strings_hide_their_contents() {
        let t = lex(r#"let s = "x.powf(2.0)"; t"#);
        let strs: Vec<&str> = t
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec!["x.powf(2.0)"]);
        assert!(t.last().unwrap().is_ident("t"));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let t = lex(r###"r#"a "quoted" b"# r"plain" br##"bytes"## z"###);
        let strs: Vec<&str> = t
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec![r#"a "quoted" b"#, "plain", "bytes"]);
        assert!(t.last().unwrap().is_ident("z"));
    }

    #[test]
    fn escaped_quotes_in_strings() {
        let t = lex(r#""a\"b" c"#);
        assert_eq!(t[0].text, r#"a\"b"#);
        assert!(t[1].is_ident("c"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = lex(r"fn f<'a>(x: &'a str) { let c = 'y'; let nl = '\n'; }");
        let lifetimes: Vec<&str> = t
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        let chars: Vec<&str> = t
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, vec!["y", r"\n"]);
    }

    #[test]
    fn raw_identifiers() {
        let t = lex("r#type x");
        assert!(t[0].is_ident("type"));
        assert!(t[1].is_ident("x"));
    }

    #[test]
    fn line_numbers_are_one_based() {
        let t = lex("a\nb\n\nc");
        assert_eq!(t[0].line, 1);
        assert_eq!(t[1].line, 2);
        assert_eq!(t[2].line, 4);
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        assert!(!lex("\"never closed").is_empty());
        assert!(!lex("/* never closed").is_empty());
        assert!(!lex("r#\"never closed").is_empty());
    }
}
