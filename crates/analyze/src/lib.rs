//! `dlt-analyze` — the workspace determinism linter.
//!
//! The workspace ships two contracts that `cargo test` can only probe
//! pointwise:
//!
//! * **bit-identity** — committed `results/*.csv` are byte-identical
//!   across reruns and thread counts (one documented exception: the
//!   `decisions_per_sec` column), which bars process-random iteration
//!   order, stray wall-clock reads and unsanctioned `powf`/`exp`/`ln`
//!   arithmetic from engine paths; and
//! * **twin-coverage** — every fast scheduling engine ships next to a
//!   `_reference` twin and a property test gating it.
//!
//! This crate enforces both at the *source* level: a dependency-free
//! token lexer ([`lexer`]), region classification ([`scan`], skipping
//! `#[cfg(test)]`/`mod tests` code), a five-rule engine ([`rules`]),
//! per-line `// dlt-analyze: allow(<rule>)` pragmas ([`pragma`]) and
//! per-rule module allowlists ([`config`]). The [`workspace`] driver
//! wires them together; [`idents`] additionally hosts the identifier
//! harvesting shared with the `docs-check` binary. `docs/analysis.md`
//! is the user-facing rule reference.

#![forbid(unsafe_code)]

pub mod config;
pub mod idents;
pub mod lexer;
pub mod pragma;
pub mod report;
pub mod rules;
pub mod scan;
pub mod workspace;

pub use config::Config;
pub use rules::Finding;
pub use workspace::{analyze_sources, analyze_workspace};
