//! Per-line suppression pragmas.
//!
//! Syntax (inside a line comment, anywhere on the line):
//!
//! ```text
//! // dlt-analyze: allow(rule-name) — one-line justification
//! // dlt-analyze: allow(rule-a, rule-b) — covers several rules
//! ```
//!
//! A pragma suppresses findings of the named rule(s) on **its own line**
//! (trailing-comment style) and on the **line immediately below** (the
//! own-line style used above doc comments, where the item line itself
//! has no room). The justification text after the rule list is free
//! form but expected by review convention — a pragma is a recorded
//! decision, not an escape hatch.
//!
//! Pragmas naming a rule the registry does not know are themselves
//! reported as findings (rule `pragma`), so typos fail CI instead of
//! silently suppressing nothing.

use crate::lexer::TokKind;
use crate::scan::FileScan;
use std::collections::BTreeMap;

/// The pragma marker inside a line comment.
const MARKER: &str = "dlt-analyze: allow(";

/// Parsed pragmas of one file: line → rule names allowed there.
#[derive(Debug, Default)]
pub struct Pragmas {
    by_line: BTreeMap<u32, Vec<String>>,
}

impl Pragmas {
    /// Extracts pragmas from `file`'s plain line comments. Doc comments
    /// (`///`, `//!`) are skipped: they are rendered documentation, and
    /// pragma examples inside them must stay inert.
    pub fn parse(file: &FileScan) -> Self {
        let mut by_line: BTreeMap<u32, Vec<String>> = BTreeMap::new();
        for t in &file.toks {
            if t.kind != TokKind::LineComment
                || t.text.starts_with("///")
                || t.text.starts_with("//!")
            {
                continue;
            }
            let Some(open) = t.text.find(MARKER) else {
                continue;
            };
            let rest = &t.text[open + MARKER.len()..];
            let Some(close) = rest.find(')') else {
                continue;
            };
            let rules = rest[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty());
            by_line.entry(t.line).or_default().extend(rules);
        }
        Pragmas { by_line }
    }

    /// True when `rule` is suppressed at `line` — a pragma sits on the
    /// line itself or on the line directly above.
    pub fn allows(&self, rule: &str, line: u32) -> bool {
        let hit = |l: u32| {
            self.by_line
                .get(&l)
                .is_some_and(|rules| rules.iter().any(|r| r == rule))
        };
        hit(line) || (line > 1 && hit(line - 1))
    }

    /// All `(line, rule)` pairs whose rule name is not in `known` —
    /// reported as `pragma` findings by the driver.
    pub fn unknown_rules(&self, known: &[&str]) -> Vec<(u32, String)> {
        let mut bad = Vec::new();
        for (&line, rules) in &self.by_line {
            for r in rules {
                if !known.contains(&r.as_str()) {
                    bad.push((line, r.clone()));
                }
            }
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pragmas(src: &str) -> Pragmas {
        Pragmas::parse(&FileScan::new("crates/x/src/lib.rs", src))
    }

    #[test]
    fn trailing_pragma_covers_its_own_line() {
        let p = pragmas("let y = x.powf(a); // dlt-analyze: allow(raw-powf) — oracle\n");
        assert!(p.allows("raw-powf", 1));
        assert!(p.allows("raw-powf", 2), "covers the line below too");
        assert!(!p.allows("raw-powf", 3));
        assert!(!p.allows("unsafe-audit", 1));
    }

    #[test]
    fn own_line_pragma_covers_the_next_line() {
        let p = pragmas("// dlt-analyze: allow(wall-clock-in-kernel) — phase timing\nlet t = 0;\n");
        assert!(p.allows("wall-clock-in-kernel", 1));
        assert!(p.allows("wall-clock-in-kernel", 2));
        assert!(!p.allows("wall-clock-in-kernel", 3));
    }

    #[test]
    fn multi_rule_pragmas() {
        let p = pragmas("// dlt-analyze: allow(raw-powf, twin-coverage) — both\n");
        assert!(p.allows("raw-powf", 2));
        assert!(p.allows("twin-coverage", 2));
    }

    #[test]
    fn pragma_in_string_is_inert() {
        let p = pragmas("let s = \"// dlt-analyze: allow(raw-powf)\";\n");
        assert!(!p.allows("raw-powf", 1));
        assert!(!p.allows("raw-powf", 2));
    }

    #[test]
    fn doc_comment_pragma_examples_are_inert() {
        let p = pragmas("/// // dlt-analyze: allow(raw-powf)\n//! dlt-analyze: allow(raw-powf)\n");
        assert!(!p.allows("raw-powf", 1));
        assert!(!p.allows("raw-powf", 2));
        assert!(!p.allows("raw-powf", 3));
    }

    #[test]
    fn unknown_rules_are_surfaced() {
        let p = pragmas("// dlt-analyze: allow(raw-powf)\n// dlt-analyze: allow(no-such-rule)\n");
        let bad = p.unknown_rules(&["raw-powf"]);
        assert_eq!(bad, vec![(2, "no-such-rule".to_string())]);
    }
}
