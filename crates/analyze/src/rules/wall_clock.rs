//! `wall-clock-in-kernel`: wall-clock reads outside measurement sites.
//!
//! **Contract.** Committed CSVs are byte-identical across reruns and
//! `--threads` values, with exactly one documented exception: the
//! `decisions_per_sec` column measured in `experiments::runner`/
//! `experiments::service`. A wall-clock read anywhere else in a
//! scheduling or solver path either leaks nondeterminism into outputs
//! or, worse, into decisions. This rule flags `Instant::now` call
//! sequences and any `SystemTime` mention in non-test code outside the
//! allowlisted measurement modules. (Importing `std::time::Instant` is
//! not flagged — only the actual clock read is.)

use super::{Context, Finding, Rule};
use crate::config::{allowed, Config};
use crate::lexer::TokKind;
use crate::scan::FileScan;

/// See the module docs.
pub struct WallClock;

impl Rule for WallClock {
    fn name(&self) -> &'static str {
        "wall-clock-in-kernel"
    }

    fn describe(&self) -> &'static str {
        "Instant::now/SystemTime outside the documented decisions_per_sec measurement sites"
    }

    fn check(&self, file: &FileScan, _ctx: &Context, cfg: &Config, out: &mut Vec<Finding>) {
        if allowed(&cfg.wall_clock_allow, &file.module) {
            return;
        }
        for (i, t) in file.toks.iter().enumerate() {
            if file.in_test[i] || t.kind != TokKind::Ident {
                continue;
            }
            let hit = if t.text == "SystemTime" {
                true
            } else if t.text == "Instant" {
                // `Instant :: now` — the read itself, not the import.
                let c1 = file.next_code(i);
                let c2 = c1.and_then(|j| file.next_code(j));
                let c3 = c2.and_then(|j| file.next_code(j));
                matches!((c1, c2, c3), (Some(a), Some(b), Some(c))
                    if file.toks[a].is_punct(':')
                        && file.toks[b].is_punct(':')
                        && file.toks[c].is_ident("now"))
            } else {
                false
            };
            if hit {
                out.push(Finding {
                    file: file.path.clone(),
                    line: t.line,
                    rule: self.name(),
                    message: format!(
                        "`{}` wall-clock read outside the documented measurement sites — \
                         outputs must be byte-identical across reruns; move the measurement \
                         or pragma with a justification",
                        t.text
                    ),
                });
            }
        }
    }
}
