//! `nondeterministic-iteration`: hash collections in engine crates.
//!
//! **Contract.** Engine and solver outputs are bitwise reproducible —
//! CSVs are committed and diffed byte-for-byte, schedules replay from
//! ledgers exactly. `HashMap`/`HashSet` iteration order is randomized
//! per process (`RandomState`), so one `for (k, v) in &map` in a
//! decision path silently breaks the whole stack. The repo convention
//! is `BTreeMap`/`BTreeSet` or a sorted `Vec` in engine crates; this
//! rule flags any `HashMap`/`HashSet` *mention* there (the use site is
//! where review happens — proving the absence of iteration at token
//! level is not possible, so the type is barred outright and a pragma
//! records any deliberate exception).

use super::{Context, Finding, Rule};
use crate::config::Config;
use crate::lexer::TokKind;
use crate::scan::FileScan;

/// See the module docs.
pub struct NondetIteration;

impl Rule for NondetIteration {
    fn name(&self) -> &'static str {
        "nondeterministic-iteration"
    }

    fn describe(&self) -> &'static str {
        "HashMap/HashSet in engine crates (iteration order is process-random; use BTree or sorted Vec)"
    }

    fn check(&self, file: &FileScan, _ctx: &Context, cfg: &Config, out: &mut Vec<Finding>) {
        let krate = file.module.split("::").next().unwrap_or("");
        if !cfg.nondet_crates.contains(&krate) {
            return;
        }
        let mut last_line = 0u32;
        for (i, t) in file.toks.iter().enumerate() {
            if file.in_test[i] || t.kind != TokKind::Ident {
                continue;
            }
            if t.text != "HashMap" && t.text != "HashSet" {
                continue;
            }
            // One finding per line (use statements mention the type
            // once per import; repeated mentions on a line add noise).
            if t.line == last_line {
                continue;
            }
            last_line = t.line;
            out.push(Finding {
                file: file.path.clone(),
                line: t.line,
                rule: self.name(),
                message: format!(
                    "`{}` in engine crate `{krate}` — iteration order is process-random; \
                     use BTreeMap/BTreeSet or a sorted Vec",
                    t.text
                ),
            });
        }
    }
}
