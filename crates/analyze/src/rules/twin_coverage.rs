//! `twin-coverage`: every fast engine has a gating twin and a test
//! naming it.
//!
//! **Contract.** Since PR 2 the performance discipline has been: a fast
//! kernel ships only next to an executable specification — a
//! `_reference` twin it is property-tested bit-identical (or
//! oracle-bounded) against. This rule pins that state at the source
//! level for the scheduling engines: every free `pub fn` in the
//! configured crates whose name matches the fast-engine naming
//! contract (contains `_schedule`, starts with `serve_trace`, or is a
//! `*_backend` batched entry point) must
//!
//! 1. **resolve a twin** — `{name}_reference` exists as a code
//!    identifier, or for `…_with_…` variants the reference interposes
//!    before the suffix (`policy_schedule_with_alone` →
//!    `policy_schedule_reference_with_alone`), or for `*_backend`
//!    entries the un-suffixed base exists (the backend contract is
//!    "`Scalar` forwards verbatim to the base", so the base *is* the
//!    oracle); and
//! 2. **be named in a gating test** — the identifier appears in at
//!    least one harvested `tests/*properties*.rs`/`tests/*engines*.rs`
//!    file.
//!
//! `*_reference*` functions are the twins themselves and are skipped;
//! methods are skipped (the naming contract binds free engine entry
//! points, not conversions like `to_schedule`).

use super::{Context, Finding, Rule};
use crate::config::Config;
use crate::lexer::TokKind;
use crate::scan::FileScan;

/// See the module docs.
pub struct TwinCoverage;

/// True when `name` falls under the fast-engine naming contract.
fn matches_contract(name: &str) -> bool {
    name.contains("_schedule") || name.starts_with("serve_trace") || name.ends_with("_backend")
}

/// Twin candidates for `name` (see module docs for the grammar).
fn twin_candidates(name: &str) -> Vec<String> {
    if let Some(base) = name.strip_suffix("_backend") {
        return vec![base.to_string()];
    }
    let mut c = vec![format!("{name}_reference")];
    if name.contains("_with_") {
        c.push(name.replacen("_with_", "_reference_with_", 1));
    }
    c
}

impl Rule for TwinCoverage {
    fn name(&self) -> &'static str {
        "twin-coverage"
    }

    fn describe(&self) -> &'static str {
        "every fast-engine pub fn has a resolvable _reference twin and a gating test naming it"
    }

    fn check(&self, file: &FileScan, ctx: &Context, cfg: &Config, out: &mut Vec<Finding>) {
        let krate = file.module.split("::").next().unwrap_or("");
        if !cfg.twin_crates.contains(&krate) {
            return;
        }
        for (i, t) in file.toks.iter().enumerate() {
            if !t.is_ident("fn") || file.in_test[i] || file.in_impl[i] {
                continue;
            }
            // Free `pub fn` only: previous code token `pub`, or the `)`
            // of a `pub(crate)`-style visibility group.
            let Some(prev) = file.prev_code(i) else {
                continue;
            };
            let is_pub = file.toks[prev].is_ident("pub")
                || (file.toks[prev].is_punct(')') && {
                    let mut j = prev;
                    let mut depth = 0usize;
                    let mut found = false;
                    while let Some(p) = file.prev_code(j) {
                        if file.toks[p].is_punct(')') {
                            depth += 1;
                        } else if file.toks[p].is_punct('(') {
                            if depth == 0 {
                                found = file
                                    .prev_code(p)
                                    .is_some_and(|q| file.toks[q].is_ident("pub"));
                                break;
                            }
                            depth -= 1;
                        }
                        j = p;
                    }
                    found
                });
            if !is_pub {
                continue;
            }
            let Some(name_idx) = file.next_code(i) else {
                continue;
            };
            let name_tok = &file.toks[name_idx];
            if name_tok.kind != TokKind::Ident {
                continue;
            }
            let name = name_tok.text.as_str();
            if !matches_contract(name) || name.contains("reference") {
                continue;
            }
            let candidates = twin_candidates(name);
            if !candidates.iter().any(|c| ctx.code_idents.contains(c)) {
                out.push(Finding {
                    file: file.path.clone(),
                    line: name_tok.line,
                    rule: self.name(),
                    message: format!(
                        "fast engine `{name}` has no resolvable twin (looked for {}) — add the \
                         reference twin or pragma with the gating argument",
                        candidates
                            .iter()
                            .map(|c| format!("`{c}`"))
                            .collect::<Vec<_>>()
                            .join(", "),
                    ),
                });
            }
            if !ctx.test_idents.contains(name) {
                out.push(Finding {
                    file: file.path.clone(),
                    line: name_tok.line,
                    rule: self.name(),
                    message: format!(
                        "fast engine `{name}` is not named in any gating test file \
                         (tests/*{{properties,engines}}*.rs) — add differential coverage"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contract_matching() {
        assert!(matches_contract("fifo_schedule"));
        assert!(matches_contract("serve_trace_with_failures"));
        assert!(matches_contract("alone_makespans_backend"));
        assert!(!matches_contract("alone_makespans"));
        assert!(!matches_contract("replay_ledger"));
    }

    #[test]
    fn candidate_grammar() {
        assert_eq!(
            twin_candidates("policy_schedule"),
            vec!["policy_schedule_reference".to_string()]
        );
        assert_eq!(
            twin_candidates("policy_schedule_with_alone"),
            vec![
                "policy_schedule_with_alone_reference".to_string(),
                "policy_schedule_reference_with_alone".to_string(),
            ]
        );
        assert_eq!(
            twin_candidates("fifo_schedule_backend"),
            vec!["fifo_schedule".to_string()]
        );
    }
}
