//! The rule engine: a [`Rule`] trait, the [`Finding`] diagnostic type,
//! the cross-file [`Context`] and the registry of the five shipped
//! rules. Each rule encodes one of the workspace's determinism
//! contracts; `docs/analysis.md` carries the rule table and the
//! contract each rule pins.

use crate::config::Config;
use crate::scan::FileScan;
use std::collections::BTreeSet;

mod nondet_iter;
mod raw_powf;
mod twin_coverage;
mod unsafe_audit;
mod wall_clock;

pub use nondet_iter::NondetIteration;
pub use raw_powf::RawPowf;
pub use twin_coverage::TwinCoverage;
pub use unsafe_audit::UnsafeAudit;
pub use wall_clock::WallClock;

/// One diagnostic: `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (stable identifier, also the pragma key).
    pub rule: &'static str,
    /// Human-readable explanation with the expected remedy.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Cross-file knowledge the per-file rules draw on.
#[derive(Debug, Default)]
pub struct Context {
    /// Identifiers appearing as non-test code tokens anywhere in the
    /// linted sources — the `twin-coverage` resolution set.
    pub code_idents: BTreeSet<String>,
    /// Identifiers appearing in the harvested `tests/*` files (those
    /// whose names match the configured markers).
    pub test_idents: BTreeSet<String>,
}

/// A determinism-contract rule, checked file by file.
pub trait Rule {
    /// Stable rule name (diagnostic tag and pragma key).
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn describe(&self) -> &'static str;
    /// Appends findings for `file` to `out`.
    fn check(&self, file: &FileScan, ctx: &Context, cfg: &Config, out: &mut Vec<Finding>);
}

/// The shipped rule set, in reporting order.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(RawPowf),
        Box::new(NondetIteration),
        Box::new(WallClock),
        Box::new(TwinCoverage),
        Box::new(UnsafeAudit),
    ]
}

/// The rule names the pragma parser accepts (the registry plus the
/// reserved `pragma` tag unknown-rule findings are reported under).
pub fn rule_names() -> Vec<&'static str> {
    registry().iter().map(|r| r.name()).collect()
}
