//! `unsafe-audit`: `unsafe` only where sanctioned, and always justified.
//!
//! **Contract.** The workspace carries `#![forbid(unsafe_code)]` on
//! every crate except `dlt-core` and `dlt-linalg`; inside those, the
//! only sanctioned homes are `core::fastmath` (the runtime-detected
//! AVX2 kernels) and `linalg::gemm`. This rule pins that state against
//! future drift — the `forbid` attribute is itself a source line a PR
//! can delete — and additionally requires every `unsafe` occurrence in
//! a sanctioned module to carry a `SAFETY` comment within the
//! configured window above it (a `// SAFETY: …` line or a doc
//! `# Safety` section), so the justification discipline that clippy's
//! `undocumented_unsafe_blocks` applies to blocks extends to
//! `unsafe fn` items too.

use super::{Context, Finding, Rule};
use crate::config::{allowed, Config};
use crate::scan::FileScan;

/// See the module docs.
pub struct UnsafeAudit;

impl Rule for UnsafeAudit {
    fn name(&self) -> &'static str {
        "unsafe-audit"
    }

    fn describe(&self) -> &'static str {
        "unsafe only in core::fastmath / linalg::gemm, each occurrence with a SAFETY comment"
    }

    fn check(&self, file: &FileScan, _ctx: &Context, cfg: &Config, out: &mut Vec<Finding>) {
        let sanctioned = allowed(&cfg.unsafe_allow, &file.module);
        // Lines whose comments assert safety: `// SAFETY:` or a doc
        // `# Safety` section header.
        let safety_lines: Vec<u32> = file
            .toks
            .iter()
            .filter(|t| t.is_comment())
            .filter(|t| t.text.contains("SAFETY") || t.text.contains("# Safety"))
            .map(|t| t.line)
            .collect();
        for (i, t) in file.toks.iter().enumerate() {
            if file.in_test[i] || !t.is_ident("unsafe") {
                continue;
            }
            if !sanctioned {
                out.push(Finding {
                    file: file.path.clone(),
                    line: t.line,
                    rule: self.name(),
                    message: "`unsafe` outside the sanctioned modules (core::fastmath, \
                              linalg::gemm) — safe Rust is the workspace default \
                              (#![forbid(unsafe_code)])"
                        .to_string(),
                });
                continue;
            }
            let lo = t.line.saturating_sub(cfg.safety_window);
            if !safety_lines.iter().any(|&l| lo <= l && l <= t.line) {
                out.push(Finding {
                    file: file.path.clone(),
                    line: t.line,
                    rule: self.name(),
                    message: format!(
                        "`unsafe` without a `// SAFETY:` comment (or doc `# Safety` section) \
                         within the preceding {} lines",
                        cfg.safety_window
                    ),
                });
            }
        }
    }
}
