//! `raw-powf`: raw transcendental calls outside the sanctioned modules.
//!
//! **Contract.** Every hot-path power in the workspace routes through
//! `core::fastmath` (`fast_powf`/`pow_slice`, three bit-identical
//! bodies) or through a `core::costmodel` law; a stray `f64::powf` in
//! an engine silently forks the arithmetic the `_reference` twins and
//! committed CSVs pin. This rule flags `.powf(`, `.exp(` and `.ln(`
//! method calls (and their `f64::powf(x, a)` path forms) in non-test
//! code, outside the configured allowlist and outside `*_reference`
//! oracle modules (which reproduce pre-optimization arithmetic
//! verbatim by design).

use super::{Context, Finding, Rule};
use crate::config::{allowed, allows_reference_modules, Config};
use crate::lexer::TokKind;
use crate::scan::FileScan;

/// See the module docs.
pub struct RawPowf;

const CALLS: [&str; 3] = ["powf", "exp", "ln"];

impl Rule for RawPowf {
    fn name(&self) -> &'static str {
        "raw-powf"
    }

    fn describe(&self) -> &'static str {
        "raw .powf()/.exp()/.ln() outside core::fastmath, core::costmodel and oracle modules"
    }

    fn check(&self, file: &FileScan, _ctx: &Context, cfg: &Config, out: &mut Vec<Finding>) {
        if allowed(&cfg.powf_allow, &file.module) || allows_reference_modules(&file.module) {
            return;
        }
        for (i, t) in file.toks.iter().enumerate() {
            if file.in_test[i] || t.kind != TokKind::Ident {
                continue;
            }
            if !CALLS.contains(&t.text.as_str()) {
                continue;
            }
            // A call: the next code token must open the argument list.
            let Some(next) = file.next_code(i) else {
                continue;
            };
            if !file.toks[next].is_punct('(') {
                continue;
            }
            // Method (`.powf(`) or path (`f64::powf(`) position.
            let Some(prev) = file.prev_code(i) else {
                continue;
            };
            let is_method = file.toks[prev].is_punct('.');
            let is_path = file.toks[prev].is_punct(':')
                && file
                    .prev_code(prev)
                    .is_some_and(|p2| file.toks[p2].is_punct(':'));
            if !(is_method || is_path) {
                continue;
            }
            out.push(Finding {
                file: file.path.clone(),
                line: t.line,
                rule: self.name(),
                message: format!(
                    "raw `{}` call — route through core::fastmath (fast_powf/pow_slice) or a \
                     core::costmodel law, or pragma with a bit-identity justification",
                    t.text
                ),
            });
        }
    }
}
