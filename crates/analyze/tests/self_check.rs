//! Live-workspace self-check: the repository this crate lives in must
//! be clean under the default configuration — the same invocation CI's
//! `analyze` job runs, so a violating change fails `cargo test` locally
//! before it ever reaches CI.

use dlt_analyze::workspace::{analyze_workspace, workspace_sources};
use dlt_analyze::Config;
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    // crates/analyze → workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn workspace_is_clean_under_the_default_config() {
    let findings = analyze_workspace(&repo_root(), &Config::workspace_default())
        .expect("workspace walk succeeds");
    assert!(
        findings.is_empty(),
        "determinism contract violations:\n{}",
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_walk_sees_every_crate() {
    // Guard against the walker silently skipping lint roots: every
    // workspace member must contribute at least one scanned file.
    let sources = workspace_sources(&repo_root()).expect("workspace walk succeeds");
    for krate in [
        "analyze",
        "bench",
        "core",
        "experiments",
        "linalg",
        "mapreduce",
        "multiload",
        "outer",
        "partition",
        "platform",
        "samplesort",
        "sim",
        "stats",
    ] {
        let prefix = format!("crates/{krate}/src/");
        assert!(
            sources.iter().any(|(p, _)| p.starts_with(&prefix)),
            "walker found no sources under {prefix}"
        );
    }
    assert!(
        sources.iter().any(|(p, _)| p.starts_with("src/")),
        "walker found no sources under the root facade"
    );
    // The gating test harvest must see the multiload engine suites.
    assert!(
        sources
            .iter()
            .any(|(p, _)| p == "crates/multiload/tests/batch_engines.rs"),
        "walker missed the batch_engines gating suite"
    );
}

#[test]
fn violations_fail_with_exit_style_findings() {
    // End-to-end sanity on the live tree + an injected bad file: the
    // in-memory API reports against the default config exactly as the
    // CLI would.
    let mut sources = workspace_sources(&repo_root()).expect("workspace walk succeeds");
    sources.push((
        "crates/sim/src/injected.rs".to_string(),
        "pub fn hot(x: f64, a: f64) -> f64 { x.powf(a) }\n".to_string(),
    ));
    let findings = dlt_analyze::analyze_sources(&sources, &Config::workspace_default());
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "raw-powf");
    assert_eq!(findings[0].file, "crates/sim/src/injected.rs");
}
