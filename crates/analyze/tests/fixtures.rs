//! Fixture suite for the rule engine: one positive (violating) and one
//! negative (clean) snippet per rule, plus the suppression and scoping
//! edge cases each rule's soundness depends on — pragmas, allowlists,
//! test regions, strings and comments.
//!
//! Everything runs through the same in-memory [`analyze_sources`] entry
//! point the CLI uses, under reduced configs built from
//! [`Config::empty`], so a fixture exercises exactly one decision.

use dlt_analyze::workspace::analyze_sources;
use dlt_analyze::Config;

fn findings_for(path: &str, src: &str, cfg: Config) -> Vec<(String, u32)> {
    analyze_sources(&[(path.to_string(), src.to_string())], &cfg)
        .into_iter()
        .map(|f| (f.rule.to_string(), f.line))
        .collect()
}

fn lint(src: &str, cfg: Config) -> Vec<(String, u32)> {
    findings_for("crates/x/src/lib.rs", src, cfg)
}

// ------------------------------------------------------------------ raw-powf

#[test]
fn raw_powf_flags_method_and_path_calls() {
    assert_eq!(
        lint(
            "pub fn f(x: f64, a: f64) -> f64 { x.powf(a) }",
            Config::empty()
        ),
        vec![("raw-powf".to_string(), 1)]
    );
    assert_eq!(
        lint(
            "pub fn f(x: f64, a: f64) -> f64 { f64::powf(x, a) }",
            Config::empty()
        ),
        vec![("raw-powf".to_string(), 1)]
    );
    assert_eq!(
        lint(
            "pub fn f(x: f64) -> f64 { x.exp() + x.ln() }",
            Config::empty()
        ),
        vec![("raw-powf".to_string(), 1), ("raw-powf".to_string(), 1)]
    );
}

#[test]
fn raw_powf_ignores_non_call_mentions() {
    // A field or variable named `exp`, strings, comments: not calls.
    assert!(lint("pub struct S { pub exp: f64 }", Config::empty()).is_empty());
    assert!(lint("// x.powf(a) in prose\nfn f() {}", Config::empty()).is_empty());
    assert!(lint("fn f() -> &'static str { \"x.powf(a)\" }", Config::empty()).is_empty());
    // `powf` as a free fn of ours, not a method/path call.
    assert!(lint(
        "fn powf(x: f64) -> f64 { x }\nfn g(x: f64) -> f64 { powf(x) }",
        Config::empty()
    )
    .is_empty());
}

#[test]
fn raw_powf_respects_test_regions_allowlists_and_reference_modules() {
    let test_src = "#[cfg(test)]\nmod tests {\n  fn oracle(x: f64) -> f64 { x.exp() }\n}";
    assert!(lint(test_src, Config::empty()).is_empty());
    let hot = "pub fn f(x: f64, a: f64) -> f64 { x.powf(a) }";
    assert!(findings_for(
        "crates/core/src/fastmath.rs",
        hot,
        Config::empty().allow_powf("core::fastmath")
    )
    .is_empty());
    // An oracle module gets the allowance by naming convention alone.
    assert!(findings_for("crates/x/src/demand_reference.rs", hot, Config::empty()).is_empty());
    assert!(!findings_for("crates/x/src/demand.rs", hot, Config::empty()).is_empty());
}

// ------------------------------------- nondeterministic-iteration

#[test]
fn nondet_iteration_flags_hash_collections_in_scoped_crates() {
    let src =
        "use std::collections::HashMap;\npub fn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
    let got = lint(src, Config::empty().nondet_crate("x"));
    // One finding per line: the use and the declaration.
    assert_eq!(
        got,
        vec![
            ("nondeterministic-iteration".to_string(), 1),
            ("nondeterministic-iteration".to_string(), 2)
        ]
    );
}

#[test]
fn nondet_iteration_ignores_btree_out_of_scope_crates_and_tests() {
    let btree = "use std::collections::BTreeMap;\npub fn f() { let _m: BTreeMap<u32, u32> = BTreeMap::new(); }";
    assert!(lint(btree, Config::empty().nondet_crate("x")).is_empty());
    let hash = "use std::collections::HashMap;\n";
    assert!(lint(hash, Config::empty()).is_empty(), "crate not in scope");
    assert!(lint(hash, Config::empty().nondet_crate("y")).is_empty());
    let test_only = "#[cfg(test)]\nmod tests {\n  use std::collections::HashMap;\n}";
    assert!(lint(test_only, Config::empty().nondet_crate("x")).is_empty());
}

// ------------------------------------------- wall-clock-in-kernel

#[test]
fn wall_clock_flags_instant_now_and_system_time() {
    let src = "use std::time::Instant;\npub fn f() -> Instant { Instant::now() }";
    // The import and return type are not reads; only `Instant::now()` is.
    assert_eq!(
        lint(src, Config::empty()),
        vec![("wall-clock-in-kernel".to_string(), 2)]
    );
    assert_eq!(
        lint(
            "pub fn f() { let _ = std::time::SystemTime::now(); }",
            Config::empty()
        ),
        vec![("wall-clock-in-kernel".to_string(), 1)]
    );
}

#[test]
fn wall_clock_respects_allowlist_and_tests() {
    let src = "use std::time::Instant;\npub fn f() { let _t = Instant::now(); }";
    assert!(findings_for(
        "crates/experiments/src/runner.rs",
        src,
        Config::empty().allow_wall_clock("experiments::runner")
    )
    .is_empty());
    let test_only =
        "#[cfg(test)]\nmod tests {\n  use std::time::Instant;\n  fn t() { Instant::now(); }\n}";
    assert!(lint(test_only, Config::empty()).is_empty());
}

// ------------------------------------------------- twin-coverage

/// A fast engine with its twin defined and a gating test naming it.
const COVERED: &[(&str, &str)] = &[
    (
        "crates/x/src/fast.rs",
        "pub fn demand_schedule(n: usize) -> usize { n }\n\
         pub fn demand_schedule_reference(n: usize) -> usize { n }\n",
    ),
    (
        "crates/x/tests/engine_properties.rs",
        "#[test]\nfn gate() { assert_eq!(demand_schedule(3), demand_schedule_reference(3)); }\n",
    ),
];

fn twin_findings(sources: &[(&str, &str)]) -> Vec<(String, u32)> {
    let owned: Vec<(String, String)> = sources
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    analyze_sources(&owned, &Config::empty().twin_crate("x"))
        .into_iter()
        .map(|f| (f.rule.to_string(), f.line))
        .collect()
}

#[test]
fn twin_coverage_passes_covered_engines() {
    assert!(twin_findings(COVERED).is_empty());
}

#[test]
fn twin_coverage_flags_missing_twin_and_missing_test() {
    // No twin, no test: two findings on the engine.
    let got = twin_findings(&[(
        "crates/x/src/fast.rs",
        "pub fn demand_schedule(n: usize) -> usize { n }\n",
    )]);
    assert_eq!(got.len(), 2, "{got:?}");
    assert!(got.iter().all(|(r, l)| r == "twin-coverage" && *l == 1));
    // Twin present but the test file name lacks a gating marker.
    let got = twin_findings(&[
        (COVERED[0].0, COVERED[0].1),
        ("crates/x/tests/smoke.rs", COVERED[1].1),
    ]);
    assert_eq!(got.len(), 1, "{got:?}");
    // A twin mentioned only in a comment must not resolve.
    let got = twin_findings(&[
        (
            "crates/x/src/fast.rs",
            "// see demand_schedule_reference\npub fn demand_schedule(n: usize) -> usize { n }\n",
        ),
        ("crates/x/tests/engine_properties.rs", COVERED[1].1),
    ]);
    assert_eq!(got.len(), 1, "{got:?}");
}

#[test]
fn twin_coverage_grammar_variants() {
    // `*_backend` resolves by base-name existence; `_with_` interposes.
    let got = twin_findings(&[
        (
            "crates/x/src/fast.rs",
            "pub fn demand_schedule(n: usize) -> usize { n }\n\
             pub fn demand_schedule_reference(n: usize) -> usize { n }\n\
             pub fn demand_schedule_backend(n: usize) -> usize { demand_schedule(n) }\n\
             pub fn demand_schedule_with_alone(n: usize) -> usize { n }\n\
             pub fn demand_schedule_reference_with_alone(n: usize) -> usize { n }\n",
        ),
        (
            "crates/x/tests/engine_properties.rs",
            "// names: demand_schedule demand_schedule_backend demand_schedule_with_alone\n",
        ),
    ]);
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn twin_coverage_skips_methods_references_and_out_of_scope_crates() {
    // A method containing `_schedule` is a conversion, not an engine.
    let method = "pub struct S;\nimpl S {\n  pub fn to_schedule(&self) -> usize { 0 }\n}\n";
    assert!(twin_findings(&[("crates/x/src/m.rs", method)]).is_empty());
    // Reference twins themselves are never checked.
    let twin_only = "pub fn demand_schedule_reference(n: usize) -> usize { n }\n";
    assert!(twin_findings(&[("crates/x/src/r.rs", twin_only)]).is_empty());
    // Same engine in a crate outside the scope: silent.
    let engine = "pub fn demand_schedule(n: usize) -> usize { n }\n";
    let got = analyze_sources(
        &[("crates/y/src/fast.rs".to_string(), engine.to_string())],
        &Config::empty().twin_crate("x"),
    );
    assert!(got.is_empty(), "{got:?}");
}

// -------------------------------------------------- unsafe-audit

#[test]
fn unsafe_audit_flags_unsanctioned_modules() {
    let src = "pub fn f(p: *const u8) -> u8 { unsafe { *p } }";
    let got = lint(src, Config::empty());
    assert_eq!(got, vec![("unsafe-audit".to_string(), 1)]);
}

#[test]
fn unsafe_audit_requires_safety_comments_in_sanctioned_modules() {
    let cfg = || Config::empty().allow_unsafe("x");
    let bare = "pub fn f(p: *const u8) -> u8 { unsafe { *p } }";
    assert_eq!(lint(bare, cfg()), vec![("unsafe-audit".to_string(), 1)]);
    let documented =
        "// SAFETY: caller guarantees p is valid.\npub fn f(p: *const u8) -> u8 { unsafe { *p } }";
    assert!(lint(documented, cfg()).is_empty());
    let doc_section = "/// # Safety\n///\n/// `p` must be valid.\npub unsafe fn f(p: *const u8) -> u8 { unsafe { *p } }";
    assert!(lint(doc_section, cfg()).is_empty());
    // A SAFETY comment further above than the window does not count.
    let far = format!("// SAFETY: stale.\n{}{bare}", "\n".repeat(20));
    assert_eq!(lint(&far, cfg()), vec![("unsafe-audit".to_string(), 22)]);
}

#[test]
fn unsafe_audit_skips_test_regions() {
    let src = "#[cfg(test)]\nmod tests {\n  fn f(p: *const u8) -> u8 { unsafe { *p } }\n}";
    assert!(lint(src, Config::empty()).is_empty());
}

// ----------------------------------------------------- pragmas

#[test]
fn pragma_suppresses_only_the_named_rule() {
    let src = "pub fn f(x: f64, a: f64) -> f64 {\n    \
               // dlt-analyze: allow(raw-powf) — fixture\n    x.powf(a)\n}";
    assert!(lint(src, Config::empty()).is_empty());
    let wrong_rule = "pub fn f(x: f64, a: f64) -> f64 {\n    \
                      // dlt-analyze: allow(unsafe-audit) — wrong rule\n    x.powf(a)\n}";
    assert_eq!(
        lint(wrong_rule, Config::empty()),
        vec![("raw-powf".to_string(), 3)]
    );
}

#[test]
fn pragma_does_not_leak_past_the_next_line() {
    let src = "// dlt-analyze: allow(raw-powf) — first call only\n\
               pub fn f(x: f64, a: f64) -> f64 { x.powf(a) }\n\
               pub fn g(x: f64, a: f64) -> f64 { x.powf(a) }\n";
    assert_eq!(
        lint(src, Config::empty()),
        vec![("raw-powf".to_string(), 3)]
    );
}
