//! Property suite for the analyzer, on the vendored proptest shim
//! (honors `PROPTEST_CASES` / `PROPTEST_SEED` like the solver suites,
//! so the CI seed-matrix job sweeps it too).
//!
//! Three soundness properties the fixture tests can only spot-check:
//!
//! 1. **Inertness** — hazard phrases (`x.powf(a)`, `HashMap`,
//!    `Instant::now()`, `unsafe`, pragmas) embedded in string literals,
//!    comments or `#[cfg(test)]` regions never produce findings, for
//!    any combination of hazards and carriers;
//! 2. **Suppression** — a generated violation with a matching pragma
//!    (trailing or own-line) reports nothing, and the same snippet
//!    without the pragma reports exactly that rule;
//! 3. **Lexer totality** — the lexer never panics on adversarial
//!    character soup, and token line numbers are nondecreasing.

use dlt_analyze::lexer::lex;
use dlt_analyze::workspace::analyze_sources;
use dlt_analyze::Config;
use proptest::prelude::*;

/// Full-scope config: every rule armed for the fixture crate `x`.
fn armed() -> Config {
    Config::empty().nondet_crate("x").twin_crate("x")
}

fn lint(src: &str) -> Vec<String> {
    analyze_sources(
        &[("crates/x/src/lib.rs".to_string(), src.to_string())],
        &armed(),
    )
    .into_iter()
    .map(|f| f.rule.to_string())
    .collect()
}

/// Hazard phrases that would each trip a rule as live code.
const HAZARDS: [&str; 6] = [
    "x.powf(a)",
    "f64::powf(x, a)",
    "HashMap::new()",
    "Instant::now()",
    "SystemTime::now()",
    "unsafe { *p }",
];

/// Carriers that must neutralize any hazard embedded in them. `{}` is
/// the hazard slot; each carrier is a complete source line.
const CARRIERS: [&str; 5] = [
    "// hazard in a line comment: {}",
    "/* hazard in a block comment: {} */",
    "/// hazard in a doc comment: {}",
    "const S: &str = \"{}\";",
    "const R: &str = r#\"{} \"quoted\" \"#;",
];

proptest! {
    #[test]
    fn hazards_in_strings_and_comments_are_inert(
        picks in proptest::collection::vec((0usize..HAZARDS.len(), 0usize..CARRIERS.len()), 1..8)
    ) {
        let mut src = String::from("pub fn live(n: usize) -> usize { n }\n");
        for (h, c) in &picks {
            src.push_str(&CARRIERS[*c].replacen("{}", HAZARDS[*h], 1));
            src.push('\n');
        }
        let got = lint(&src);
        prop_assert!(got.is_empty(), "findings {got:?} from:\n{src}");
    }

    #[test]
    fn hazards_in_test_regions_are_inert(
        picks in proptest::collection::vec(0usize..HAZARDS.len(), 1..6)
    ) {
        let mut src = String::from("#[cfg(test)]\nmod tests {\n  fn helper(x: f64, a: f64, p: *const u8) {\n");
        for h in &picks {
            src.push_str("    let _ = ");
            src.push_str(HAZARDS[*h]);
            src.push_str(";\n");
        }
        src.push_str("  }\n}\n");
        let got = lint(&src);
        prop_assert!(got.is_empty(), "findings {got:?} from:\n{src}");
    }

    #[test]
    fn pragmas_suppress_exactly_their_rule(
        hazard in 0usize..HAZARDS.len(),
        own_line in any::<bool>()
    ) {
        // The rule each hazard trips.
        const RULES: [&str; 6] = [
            "raw-powf",
            "raw-powf",
            "nondeterministic-iteration",
            "wall-clock-in-kernel",
            "wall-clock-in-kernel",
            "unsafe-audit",
        ];
        let stmt = format!("    let _ = {};", HAZARDS[hazard]);
        let hot = format!("pub fn f(x: f64, a: f64, p: *const u8) {{\n{stmt}\n}}\n");
        let got = lint(&hot);
        prop_assert_eq!(&got, &vec![RULES[hazard].to_string()], "unpragma'd: {}", hot);

        let pragma = format!("// dlt-analyze: allow({}) — generated", RULES[hazard]);
        let suppressed = if own_line {
            format!("pub fn f(x: f64, a: f64, p: *const u8) {{\n    {pragma}\n{stmt}\n}}\n")
        } else {
            format!("pub fn f(x: f64, a: f64, p: *const u8) {{\n{stmt} {pragma}\n}}\n")
        };
        let got = lint(&suppressed);
        prop_assert!(got.is_empty(), "findings {got:?} from:\n{suppressed}");
    }

    #[test]
    fn lexer_is_total_on_character_soup(
        chars in proptest::collection::vec(0usize..SOUP.len(), 0..200)
    ) {
        let src: String = chars.iter().map(|&i| SOUP[i]).collect();
        let toks = lex(&src);
        let mut last = 1u32;
        for t in &toks {
            prop_assert!(t.line >= last, "line numbers regressed in {src:?}");
            last = t.line;
        }
    }
}

/// Adversarial alphabet: every character that steers the lexer's literal
/// and comment handling, plus plain filler.
const SOUP: [char; 16] = [
    '"', '\'', '/', '*', '#', 'r', 'b', '\\', '\n', ' ', 'x', '0', '.', '{', '}', '_',
];
