//! Matrix multiplication on heterogeneity-aware partitions (Section 4.2):
//! counts SUMMA communication volumes for the block-cyclic baseline vs the
//! PERI-SUM distribution, and executes both with real threads against the
//! reference GEMM.
//!
//! ```text
//! cargo run --release --example matmul
//! ```

use nonlinear_dlt::linalg::{gemm_naive, gemm_parallel, Matrix};
use nonlinear_dlt::outer::{
    block_cyclic_rects, comm_lower_bound, execute_partitioned_matmul, het_rects, summa_comm_volume,
};
use nonlinear_dlt::platform::rng::seeded;
use nonlinear_dlt::platform::{Platform, PlatformSpec, SpeedDistribution};

fn main() {
    let n = 192;
    let mut rng = seeded(3);
    let a = Matrix::random(n, n, &mut rng);
    let b = Matrix::random(n, n, &mut rng);

    // --- Baseline kernels ----------------------------------------------------
    let reference = gemm_naive(&a, &b);
    let par = gemm_parallel(&a, &b, 4);
    println!(
        "dense GEMM {n}×{n}: parallel kernel max error {:.2e}\n",
        par.max_abs_diff(&reference)
    );

    // --- Homogeneous platform: block-cyclic grid is fine ----------------------
    let hom_platform = Platform::homogeneous(16, 1.0, 1.0).unwrap();
    let grid = block_cyclic_rects(n, 4);
    let grid_sim = summa_comm_volume(n, &grid);
    let lb_hom = n as f64 * comm_lower_bound(&hom_platform, n); // per-step LB × N steps
    println!(
        "homogeneous p=16: block-cyclic SUMMA volume {:.2e} ({:.3}× the N·LB bound)",
        grid_sim.total,
        grid_sim.total / lb_hom
    );
    let (_, err) = execute_partitioned_matmul(&a, &b, &grid);
    println!("  executed on the 4×4 grid: max error {err:.2e}\n");

    // --- Heterogeneous platform: PERI-SUM rectangles --------------------------
    let het_platform = PlatformSpec::new(16, SpeedDistribution::paper_uniform())
        .generate(11)
        .unwrap();
    let het = het_rects(&het_platform, n);
    let het_sim = summa_comm_volume(n, &het.rects);
    let lb_het = n as f64 * comm_lower_bound(&het_platform, n);
    println!(
        "heterogeneous p=16 (uniform speeds): Commhet SUMMA volume {:.2e} ({:.3}× N·LB)",
        het_sim.total,
        het_sim.total / lb_het
    );
    // What the naive grid would pay on this platform, with demand-driven
    // imbalance ignored (volume only):
    println!(
        "  block-cyclic on the same platform: {:.2e} ({:.3}× N·LB) — but with ~{:.0}% load imbalance",
        grid_sim.total,
        grid_sim.total / lb_het,
        100.0 * grid_imbalance(&het_platform, &grid, n)
    );
    let (_, err) = execute_partitioned_matmul(&a, &b, &het.rects);
    println!("  executed on the PERI-SUM partition: max error {err:.2e}");
    assert!(err < 1e-9);
    println!("\n→ same numerics, near-optimal communication, and load balance that");
    println!("  matches processor speeds (Section 4.2's point).");
}

/// Load imbalance of a *static* uniform grid on a heterogeneous platform:
/// compute time of worker i is area_i · w_i.
fn grid_imbalance(platform: &Platform, rects: &[nonlinear_dlt::outer::IntRect], _n: usize) -> f64 {
    let finish: Vec<f64> = rects
        .iter()
        .zip(platform.iter())
        .map(|(r, w)| r.area() as f64 * w.w())
        .collect();
    nonlinear_dlt::sim::imbalance(&finish)
}
