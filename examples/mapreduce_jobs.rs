//! MapReduce, linear vs non-linear (Section 1.1 + the paper's thesis):
//! runs three real jobs on the threaded mini-MapReduce engine and compares
//! their communication profiles.
//!
//! ```text
//! cargo run --release --example mapreduce_jobs
//! ```

use nonlinear_dlt::linalg::{gemm_naive, Matrix};
use nonlinear_dlt::mapreduce::{jobs, JobConfig};
use nonlinear_dlt::platform::rng::seeded;

fn main() {
    let config = JobConfig::new(4, 4);

    // --- 1. Word count: the linear workload MapReduce was built for. -----
    let docs: Vec<String> = vec![
        "divisible loads are perfectly parallel".into(),
        "non linear loads are not divisible".into(),
        "there is no free lunch".into(),
    ];
    let wc = jobs::wordcount::run(&docs, &config);
    println!("word count ({} docs):", docs.len());
    println!(
        "  'loads' appears {} times, 'divisible' {} times",
        wc.counts["loads"], wc.counts["divisible"]
    );
    println!(
        "  volume: {} input units → {} shuffle pairs (replication factor 1 — linear job)\n",
        wc.volume.map_input_units, wc.volume.shuffle_pairs
    );

    // --- 2. The paper's replicated-input matrix product. ------------------
    let n = 24;
    let mut rng = seeded(7);
    let a = Matrix::random(n, n, &mut rng);
    let b = Matrix::random(n, n, &mut rng);
    let mm = jobs::matmul::run(&a, &b, &config);
    let err = mm.c.max_abs_diff(&gemm_naive(&a, &b));
    println!("matrix product over MapReduce (the Section 1.1 construction), N = {n}:");
    println!("  max error vs reference GEMM: {err:.2e}");
    println!(
        "  volume: {} input units for {} distinct elements — replication factor {:.0} (= N)",
        mm.volume.map_input_units,
        2 * n * n,
        mm.volume.replication_factor(2 * n * n)
    );
    println!(
        "  {} pairs cross the shuffle (= N³): the N² data became an N³ dataset\n",
        mm.volume.shuffle_pairs
    );

    // --- 3. Block-distributed outer product (Commhom as a real job). ------
    let nv = 64;
    let av: Vec<f64> = (0..nv).map(|i| (i as f64).sin()).collect();
    let bv: Vec<f64> = (0..nv).map(|i| (i as f64).cos()).collect();
    println!("outer product aᵀ×b as block-distributed MapReduce, N = {nv}:");
    for side in [32usize, 16, 8, 4] {
        let out = jobs::outer::run(&av, &bv, side, &config);
        println!(
            "  block side {side:2}: ships {:5} elements (Commhom accounting), {} shuffle pairs",
            out.volume.map_input_units, out.volume.shuffle_pairs
        );
    }
    println!("\n→ halving the block side doubles the shipped data: the replication");
    println!("  cost the paper's heterogeneous rectangles avoid.");
}
