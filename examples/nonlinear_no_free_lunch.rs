//! The no-free-lunch theorem, executed (Section 2): solve the non-linear
//! DLT allocation exactly — with the sophisticated solvers the paper's
//! targets propose — and watch the completed work fraction vanish anyway.
//!
//! ```text
//! cargo run --release --example nonlinear_no_free_lunch
//! ```

use nonlinear_dlt::dlt::{analysis, nonlinear};
use nonlinear_dlt::platform::{Platform, PlatformSpec, SpeedDistribution};
use nonlinear_dlt::sim::simulate;

fn main() {
    let n = 4096.0;
    println!("non-linear divisible load: N = {n} data units, cost x^α\n");

    println!("fraction of total work done by ONE optimal distribution round:");
    println!("{:>6} {:>10} {:>10} {:>10}", "P", "α=1.5", "α=2", "α=3");
    for p in [2usize, 8, 32, 128, 512] {
        let row: Vec<f64> = [1.5, 2.0, 3.0]
            .iter()
            .map(|&alpha| 1.0 - analysis::remaining_fraction_homogeneous(p, alpha))
            .collect();
        println!(
            "{:>6} {:>9.2}% {:>9.2}% {:>9.2}%",
            p,
            100.0 * row[0],
            100.0 * row[1],
            100.0 * row[2]
        );
    }

    println!("\nand solving the 'hard' heterogeneous allocation problem exactly");
    println!("(the papers the paper rebuts) does not rescue the parallel fraction:");
    let platform = PlatformSpec::new(64, SpeedDistribution::paper_uniform())
        .generate(5)
        .unwrap();
    for alpha in [1.5, 2.0, 3.0] {
        let par = nonlinear::equal_finish_parallel(&platform, n, alpha).unwrap();
        let one_port = nonlinear::equal_finish_one_port(&platform, n, alpha, None).unwrap();
        println!(
            "  α = {alpha}: parallel-comm does {:6.3}% of W in T={:9.0}; one-port {:6.3}% in T={:9.0}",
            100.0 * par.work_fraction_done(),
            par.makespan,
            100.0 * one_port.work_fraction_done(),
            one_port.makespan,
        );
    }
    println!("  (one-port 'does more work' only by concentrating the load on the");
    println!("   first-served workers — Σxᵅ rewards concentration — at the price of");
    println!("   a far larger makespan: degenerating toward one processor.)");

    // Execute one allocation end-to-end on the simulator to show the
    // equal-finish property the solvers guarantee.
    let platform = Platform::from_speeds_and_costs(&[1.0, 2.0, 5.0], &[1.0, 0.5, 0.4]).unwrap();
    let alloc = nonlinear::equal_finish_parallel(&platform, 256.0, 2.0).unwrap();
    let report = simulate(&platform, &alloc.to_schedule());
    println!("\n3-worker check (α = 2): shares {:?}", alloc.x);
    println!(
        "  simulated finish times {:?} — all equal to the makespan {:.3}",
        report.finish_times(),
        alloc.makespan
    );
    println!("\n→ optimizing the distribution round is a free-lunch mirage: as P grows,");
    println!("  (W − W_partial)/W = 1 − 1/P^(α−1) → 1 (Section 2).");
}
