//! Outer product on a strongly heterogeneous platform (Section 4.1):
//! compares the three distribution strategies, shows the Figure 2
//! footprint effect, and *executes* the partitioned outer product to prove
//! the distribution computes the right matrix.
//!
//! ```text
//! cargo run --release --example outer_product
//! ```

use nonlinear_dlt::linalg::{outer_product, outer_product_block, Matrix};
use nonlinear_dlt::outer::{
    comm_lower_bound, evaluate, footprints, het_rects, hom_blocks, Strategy,
};
use nonlinear_dlt::platform::rng::seeded;
use nonlinear_dlt::platform::Platform;
use rand::Rng;

fn main() {
    // Half slow workers, half 12× faster — the paper's Figure 2 setting.
    let platform = Platform::two_class(4, 1.0, 12.0).unwrap();
    let n = 520;
    println!(
        "outer product aᵀ×b, N = {n}, two-class platform speeds {:?}\n",
        platform.speeds()
    );

    // --- Strategy comparison ------------------------------------------------
    let lb = comm_lower_bound(&platform, n);
    println!("communication volumes (lower bound {lb:.0}):");
    for strategy in Strategy::paper_strategies() {
        let r = evaluate(&platform, n, strategy);
        println!(
            "  {:10} {:9.0} data units ({:5.2}× LB), imbalance {:.4}",
            r.strategy.name(),
            r.comm_volume,
            r.ratio_to_lb,
            r.imbalance
        );
    }

    // --- Figure 2: footprints ------------------------------------------------
    let hom = hom_blocks(&platform, n);
    let het = het_rects(&platform, n);
    let hom_fp = footprints(n, &hom.blocks, &hom.owner, platform.len());
    let het_owner: Vec<usize> = (0..platform.len()).collect();
    let het_fp = footprints(n, &het.rects, &het_owner, platform.len());
    println!(
        "\nper-worker footprint (distinct a/b entries needed, max 2N = {}):",
        2 * n
    );
    for w in 0..platform.len() {
        println!(
            "  worker {w} (speed {:4.0}): hom-blocks {:5}   het-rect {:5}",
            platform.worker(w).speed(),
            hom_fp[w].total(),
            het_fp[w].total()
        );
    }

    // --- Execute the het distribution and verify the numbers -----------------
    let mut rng = seeded(1);
    let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let reference = outer_product(&a, &b);
    let mut result = Matrix::zeros(n, n);
    for r in &het.rects {
        // Ship exactly the slices the half-perimeter accounts for.
        outer_product_block(
            &mut result,
            &a[r.row0..r.row1],
            &b[r.col0..r.col1],
            r.row0,
            r.col0,
        );
    }
    let err = result.max_abs_diff(&reference);
    println!("\nexecuted Commhet outer product: max |error| = {err:.2e} (vs reference)");
    assert!(err == 0.0, "partitioned outer product must be exact");
    println!("→ each worker computed exactly its rectangle from the shipped slices.");
}
