//! Classical linear DLT scheduling gallery: single-round parallel vs
//! one-port (with its optimal bandwidth ordering) vs multi-installment,
//! rendered as Gantt charts on the discrete-event simulator.
//!
//! ```text
//! cargo run --release --example dlt_schedules
//! ```

use nonlinear_dlt::dlt::linear;
use nonlinear_dlt::platform::Platform;
use nonlinear_dlt::sim::{ascii_gantt, simulate};

fn main() {
    // Heterogeneous star: increasing speeds, varying bandwidths.
    let platform = Platform::from_speeds_and_costs(&[1.0, 2.0, 4.0], &[0.8, 0.4, 0.6]).unwrap();
    let load = 120.0;
    println!(
        "linear divisible load W = {load} on speeds {:?}, inv-bandwidths {:?}\n",
        platform.speeds(),
        platform.inv_bandwidths()
    );

    // --- Parallel communications (the paper's model) ------------------------
    let par = linear::single_round_parallel(&platform, load);
    let report = simulate(&platform, &par.to_schedule());
    println!(
        "single round, parallel comms: makespan {:.3}, chunks {:?}",
        par.makespan, par.chunks
    );
    println!("{}", ascii_gantt(&report.to_trace(), 68));

    // --- One-port, optimal ordering -----------------------------------------
    let op = linear::single_round_one_port(&platform, load, None).unwrap();
    let report = simulate(&platform, &op.to_schedule());
    println!(
        "single round, one-port (order {:?} by bandwidth): makespan {:.3}",
        op.order, op.makespan
    );
    println!("{}", ascii_gantt(&report.to_trace(), 68));

    // --- One-port, a deliberately bad ordering -------------------------------
    let mut bad_order = linear::optimal_one_port_order(&platform);
    bad_order.reverse();
    let bad = linear::single_round_one_port(&platform, load, Some(bad_order)).unwrap();
    println!(
        "one-port with reversed order: makespan {:.3} ({:+.1}% vs optimal)\n",
        bad.makespan,
        100.0 * (bad.makespan - op.makespan) / op.makespan
    );

    // --- Multi-installment ----------------------------------------------------
    println!("multi-installment (parallel comms), pipelining hides latency:");
    for rounds in [1usize, 2, 4, 8, 16] {
        let makespan = linear::multi_round_makespan(&platform, load, rounds).unwrap();
        println!("  {rounds:2} rounds → makespan {makespan:8.3}");
    }
    let schedule = linear::uniform_multi_round(&platform, load, 4).unwrap();
    let report = simulate(&platform, &schedule);
    println!("\n4-round schedule:");
    println!("{}", ascii_gantt(&report.to_trace(), 68));
}
