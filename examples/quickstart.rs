//! Quickstart: the paper's story on one small platform.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! 1. Schedule a *linear* divisible load — the classical DLT closed form.
//! 2. Schedule a *quadratic* load the same way and watch the work fraction
//!    collapse (Section 2's no-free-lunch).
//! 3. Distribute the quadratic workload's *domain* instead, with the three
//!    strategies of Section 4, and compare communication volumes.

use nonlinear_dlt::dlt::{analysis, linear, nonlinear};
use nonlinear_dlt::outer::{comm_lower_bound, evaluate, Strategy};
use nonlinear_dlt::platform::Platform;
use nonlinear_dlt::sim::simulate;

fn main() {
    // A small heterogeneous star: speeds 1/2/4/8, inverse bandwidths 1.
    let platform = Platform::from_speeds(&[1.0, 2.0, 4.0, 8.0]).unwrap();
    println!("platform: speeds {:?}\n", platform.speeds());

    // --- 1. Linear divisible load -----------------------------------------
    let load = 1200.0;
    let alloc = linear::single_round_parallel(&platform, load);
    println!("linear load W = {load}:");
    for (i, chunk) in alloc.chunks.iter().enumerate() {
        println!("  worker {i} receives {chunk:8.2} data units");
    }
    let sim_report = simulate(&platform, &alloc.to_schedule());
    println!(
        "  makespan {:.3} (closed form) / {:.3} (simulated) — all workers finish together\n",
        alloc.makespan, sim_report.makespan
    );

    // --- 2. The same, for a quadratic workload ----------------------------
    let n = 1200.0;
    let quad = nonlinear::equal_finish_parallel(&platform, n, 2.0).unwrap();
    println!("quadratic load, N = {n} data (W = N²):");
    println!(
        "  optimal single round does only {:.2}% of the work",
        100.0 * quad.work_fraction_done()
    );
    for p in [4usize, 16, 64, 256] {
        println!(
            "  on {p:3} homogeneous workers the round leaves {:.2}% undone",
            100.0 * analysis::remaining_fraction_homogeneous(p, 2.0)
        );
    }
    println!("  → non-linear loads are not divisible (Section 2).\n");

    // --- 3. Distribute the domain instead ---------------------------------
    let domain = 1200;
    println!("outer-product domain {domain}×{domain}, strategies of Section 4:");
    let lb = comm_lower_bound(&platform, domain);
    println!("  lower bound LBComm = {lb:.0} data units");
    for strategy in Strategy::paper_strategies() {
        let r = evaluate(&platform, domain, strategy);
        println!(
            "  {:12} volume {:10.0}  ({:5.2}× LB)  imbalance {:6.4}  chunks {:4}  k={}",
            r.strategy.name(),
            r.comm_volume,
            r.ratio_to_lb,
            r.imbalance,
            r.n_chunks,
            r.k
        );
    }
    println!("\n→ heterogeneity-aware rectangles (Commhet) pay near the bound;");
    println!("  demand-driven homogeneous blocks replicate data heavily.");
}
