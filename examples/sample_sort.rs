//! Sorting as an almost-divisible load (Section 3): really sorts 4M keys
//! with the three-phase sample sort, on homogeneous and heterogeneous
//! bucket shares, and prints the phase breakdown and bucket balance.
//!
//! ```text
//! cargo run --release --example sample_sort
//! ```

use nonlinear_dlt::platform::rng::seeded;
use nonlinear_dlt::samplesort::{max_bucket_bound, sample_sort, CostModel, SampleSortConfig};
use rand::Rng;

fn main() {
    let n = 1 << 22; // 4M keys
    let p = 8;
    let mut rng = seeded(42);
    let data: Vec<u64> = (0..n).map(|_| rng.gen()).collect();

    println!("sample sort: N = {n}, p = {p}, s = log²N (paper's oversampling)\n");

    // --- Homogeneous -------------------------------------------------------
    let out = sample_sort(data.clone(), &SampleSortConfig::homogeneous(p, 7));
    assert!(out.sorted.windows(2).all(|w| w[0] <= w[1]));
    println!("homogeneous buckets:");
    println!("  oversampling s = {}", out.oversampling);
    println!(
        "  phase times: step1 {:.4}s (sample+splitters), step2 {:.4}s (scatter), step3 {:.4}s (local sorts)",
        out.t_step1, out.t_step2, out.t_step3
    );
    println!(
        "  measured non-divisible wall-clock fraction: {:.2}%",
        100.0 * out.nondivisible_fraction()
    );
    println!(
        "  analytic fraction log p / log N = {:.2}%",
        100.0 * (p as f64).ln() / (n as f64).ln()
    );
    println!("  bucket sizes: {:?}", out.stats.sizes);
    println!(
        "  max bucket = {} vs w.h.p. bound {:.0} (overload {:.4})",
        out.stats.max_size(),
        max_bucket_bound(n, p),
        out.stats.max_overload()
    );
    let model = CostModel::evaluate(n, out.oversampling, &out.stats.sizes, &vec![1.0; p]);
    println!(
        "  cost model: predicted speedup {:.2}× on {p} workers\n",
        model.speedup()
    );

    // --- Heterogeneous (Section 3.2) ---------------------------------------
    let speeds = vec![1.0, 1.0, 2.0, 2.0, 4.0, 4.0, 8.0, 8.0];
    let out = sample_sort(data, &SampleSortConfig::heterogeneous(speeds.clone(), 7));
    assert!(out.sorted.windows(2).all(|w| w[0] <= w[1]));
    println!("heterogeneous buckets (speeds {speeds:?}):");
    let total: f64 = speeds.iter().sum();
    for (i, &size) in out.stats.sizes.iter().enumerate() {
        let ideal = n as f64 * speeds[i] / total;
        println!(
            "  worker {i}: bucket {size:8} keys, ideal {ideal:9.0} ({:+.2}%)",
            100.0 * (size as f64 - ideal) / ideal
        );
    }
    println!(
        "  max overload vs speed share: {:.4} — sorting stays DLT-friendly on heterogeneous platforms",
        out.stats.max_overload()
    );
}
